//! The aggregated run report and its JSON persistence.

use crate::json::{JsonError, Value};
use crate::latency::LatencyHistogram;

/// Per-worker (or machine-stream) aggregate counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkerTelemetry {
    /// Successful steals performed by this worker.
    pub steals: u64,
    /// Steal attempts that found the victim's deque empty (starvation).
    pub empty_steals: u64,
    /// Steal attempts that lost a race for present work (contention).
    pub lost_race_steals: u64,
    /// Tempo transitions of this worker, by kind.
    pub transitions: TransitionMix,
    /// DVFS actuations applied for this worker.
    pub actuations: u64,
    /// Energy attributed to this worker, joules.
    pub energy_j: f64,
    /// Park episodes this worker completed (bounded idle spin gave way
    /// to a condvar park).
    pub parks: u64,
    /// Total nanoseconds this worker spent parked.
    pub parked_ns: u64,
    /// Elastic sleep episodes this worker entered (indefinite parks
    /// under the elastic policy; disjoint from `parks`).
    pub sleeps: u64,
    /// Total nanoseconds this worker spent in elastic sleep (rides the
    /// wake event, so an episode still open at report time is not yet
    /// counted — the parked_ns convention).
    pub slept_ns: u64,
    /// Elastic wake-ups this worker completed.
    pub wakes: u64,
    /// Future-task polls executed on this worker.
    pub future_polls: u64,
    /// Future-task waker firings on this stream.
    pub future_wakes: u64,
    /// Future tasks re-enqueued from this stream (wake while idle, or a
    /// wake that raced with the poll).
    pub future_repushes: u64,
    /// Causal-span phase openings recorded on this stream.
    pub span_begins: u64,
    /// Causal-span phase closings recorded on this stream.
    pub span_ends: u64,
    /// Nanoseconds covered by busy-class power intervals (executing at
    /// some DVFS operating point).
    pub power_busy_ns: u64,
    /// Nanoseconds covered by spin-class power intervals (idle-spinning
    /// at busy power).
    pub power_spin_ns: u64,
    /// Nanoseconds covered by parked-class power intervals.
    pub power_parked_ns: u64,
    /// Energy of the busy-class intervals, joules (exact per-interval
    /// mW × ns products; cross-checks `energy_j` minus idle draw).
    pub power_busy_j: f64,
    /// Energy of the spin-class intervals, joules.
    pub power_spin_j: f64,
    /// Energy of the parked-class intervals, joules.
    pub power_parked_j: f64,
    /// Events lost to ring overflow on this stream. Tallied counters
    /// stay exact regardless; a nonzero value only means the *event
    /// timeline* (flight recorder, trace export) is truncated.
    pub dropped_events: u64,
}

impl WorkerTelemetry {
    /// All steal attempts, successful or not.
    #[must_use]
    pub fn steal_attempts(&self) -> u64 {
        self.steals + self.empty_steals + self.lost_race_steals
    }
}

/// Counts of tempo transitions by kind — the "tempo-transition mix" the
/// sim/rt cross-validation compares.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransitionMix {
    /// Thief procrastinations.
    pub path_downs: u64,
    /// Immediacy-relay raises.
    pub relay_ups: u64,
    /// Workload threshold raises.
    pub workload_ups: u64,
    /// Workload threshold lowerings.
    pub workload_downs: u64,
}

impl TransitionMix {
    /// Total transitions of any kind.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.path_downs + self.relay_ups + self.workload_ups + self.workload_downs
    }

    /// The mix as fractions of the total, in
    /// [`TransitionKind::all`](hermes_core::TransitionKind::all) order;
    /// all zeros when no transitions occurred.
    #[must_use]
    pub fn fractions(&self) -> [f64; 4] {
        let total = self.total();
        if total == 0 {
            return [0.0; 4];
        }
        let t = total as f64;
        [
            self.path_downs as f64 / t,
            self.relay_ups as f64 / t,
            self.workload_ups as f64 / t,
            self.workload_downs as f64 / t,
        ]
    }

    /// Largest absolute difference between the two mixes' fractions.
    #[must_use]
    pub fn max_fraction_distance(&self, other: &TransitionMix) -> f64 {
        self.fractions()
            .iter()
            .zip(other.fractions())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    fn add(&mut self, other: &TransitionMix) {
        self.path_downs += other.path_downs;
        self.relay_ups += other.relay_ups;
        self.workload_ups += other.workload_ups;
        self.workload_downs += other.workload_downs;
    }
}

/// The schema-stable aggregate of one run, identical whether produced by
/// the simulator or the real-thread runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Schema identifier ([`RunReport::SCHEMA`]).
    pub schema: String,
    /// Free-form run label (workload, policy, worker count…).
    pub label: String,
    /// Which execution layer produced the report (`"sim"` or `"rt"`).
    pub executor: String,
    /// Number of workers.
    pub workers: usize,
    /// Wall-clock (rt) or virtual (sim) run time, seconds.
    pub elapsed_s: f64,
    /// Total energy from the host's authoritative model, joules.
    pub energy_j: f64,
    /// Energy folded from machine-stream samples (the simulated supply
    /// meter), joules; 0 when the host has no machine-level meter.
    pub machine_energy_j: f64,
    /// Per-worker aggregates, indexed by worker id.
    pub per_worker: Vec<WorkerTelemetry>,
    /// `steal_matrix[thief][victim]` = successful steals.
    pub steal_matrix: Vec<Vec<u64>>,
    /// Successful steals bucketed by steal distance:
    /// `steal_distance_hist[d]` counts the steals whose thief/victim pair
    /// sits at distance `d` (hermes-topology metric: 0 = same core,
    /// 1 = same clock domain, 2 = same package, 3 = cross-package).
    /// Empty when the host attached no topology — see
    /// [`with_steal_distances`](Self::with_steal_distances).
    pub steal_distance_hist: Vec<u64>,
    /// Per-request serving latencies, merged across all worker streams
    /// (log-bucketed; see [`LatencyHistogram`]). Empty for closed
    /// fork-join runs that serve no requests, and when parsing
    /// artifacts written before the serving subsystem existed.
    pub latency_hist: LatencyHistogram,
    /// Per-request attributed energies in **microjoules**, merged across
    /// all worker streams (same log-bucketed scheme as `latency_hist` —
    /// the buckets are unit-agnostic). Empty for runs that serve no
    /// requests, and when parsing artifacts written before energy
    /// attribution existed.
    pub energy_hist: LatencyHistogram,
}

impl RunReport {
    /// The schema identifier written into every report.
    pub const SCHEMA: &'static str = "hermes-run-report/v1";

    /// Sum of the per-worker aggregates.
    #[must_use]
    pub fn totals(&self) -> WorkerTelemetry {
        let mut t = WorkerTelemetry::default();
        for w in &self.per_worker {
            t.steals += w.steals;
            t.empty_steals += w.empty_steals;
            t.lost_race_steals += w.lost_race_steals;
            t.transitions.add(&w.transitions);
            t.actuations += w.actuations;
            t.energy_j += w.energy_j;
            t.parks += w.parks;
            t.parked_ns += w.parked_ns;
            t.sleeps += w.sleeps;
            t.slept_ns += w.slept_ns;
            t.wakes += w.wakes;
            t.future_polls += w.future_polls;
            t.future_wakes += w.future_wakes;
            t.future_repushes += w.future_repushes;
            t.span_begins += w.span_begins;
            t.span_ends += w.span_ends;
            t.power_busy_ns += w.power_busy_ns;
            t.power_spin_ns += w.power_spin_ns;
            t.power_parked_ns += w.power_parked_ns;
            t.power_busy_j += w.power_busy_j;
            t.power_spin_j += w.power_spin_j;
            t.power_parked_j += w.power_parked_j;
            t.dropped_events += w.dropped_events;
        }
        t
    }

    /// The whole-run tempo-transition mix.
    #[must_use]
    pub fn transition_mix(&self) -> TransitionMix {
        self.totals().transitions
    }

    /// Derive [`steal_distance_hist`](Self::steal_distance_hist) from the
    /// steal matrix and a worker-to-worker distance matrix (see
    /// `hermes_topology::Topology::worker_distances`). The histogram
    /// always partitions the matrix exactly: its total equals the total
    /// successful steals.
    ///
    /// # Panics
    ///
    /// Panics if `distances` is not a `workers × workers` square — the
    /// host attached a matrix for a different worker layout.
    #[must_use]
    pub fn with_steal_distances(mut self, distances: &[Vec<u32>]) -> Self {
        assert_eq!(
            distances.len(),
            self.workers,
            "distance matrix is for {} workers, report has {}",
            distances.len(),
            self.workers
        );
        let max_d = distances
            .iter()
            .inspect(|row| {
                assert_eq!(row.len(), self.workers, "distance matrix must be square");
            })
            .flatten()
            .copied()
            .max()
            .unwrap_or(0) as usize;
        let mut hist = vec![0u64; max_d + 1];
        for (t, row) in self.steal_matrix.iter().enumerate() {
            for (v, &count) in row.iter().enumerate() {
                hist[distances[t][v] as usize] += count;
            }
        }
        self.steal_distance_hist = hist;
        self
    }

    /// Total steals in the distance histogram (equals total successful
    /// steals once [`with_steal_distances`](Self::with_steal_distances)
    /// ran).
    #[must_use]
    pub fn steal_distance_total(&self) -> u64 {
        self.steal_distance_hist.iter().sum()
    }

    /// Fraction of successful steals whose victim shared the thief's
    /// clock domain (steal distance ≤ 1). `None` without a distance
    /// histogram or without any successful steal.
    #[must_use]
    pub fn same_domain_steal_fraction(&self) -> Option<f64> {
        let total = self.steal_distance_total();
        if self.steal_distance_hist.is_empty() || total == 0 {
            return None;
        }
        let near: u64 = self.steal_distance_hist.iter().take(2).sum();
        Some(near as f64 / total as f64)
    }

    /// Serialize to pretty-printed JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        self.to_value().to_string_pretty()
    }

    /// The report as a [`Value`] tree (for embedding into larger
    /// artifacts like the bench baseline).
    #[must_use]
    pub fn to_value(&self) -> Value {
        Value::obj(vec![
            ("schema", Value::Str(self.schema.clone())),
            ("label", Value::Str(self.label.clone())),
            ("executor", Value::Str(self.executor.clone())),
            ("workers", Value::Num(self.workers as f64)),
            ("elapsed_s", Value::Num(self.elapsed_s)),
            ("energy_j", Value::Num(self.energy_j)),
            ("machine_energy_j", Value::Num(self.machine_energy_j)),
            (
                "per_worker",
                Value::Arr(self.per_worker.iter().map(worker_to_value).collect()),
            ),
            (
                "steal_matrix",
                Value::Arr(
                    self.steal_matrix
                        .iter()
                        .map(|row| Value::Arr(row.iter().map(|&n| Value::Num(n as f64)).collect()))
                        .collect(),
                ),
            ),
            (
                "steal_distance_hist",
                Value::Arr(
                    self.steal_distance_hist
                        .iter()
                        .map(|&n| Value::Num(n as f64))
                        .collect(),
                ),
            ),
            ("latency_hist", self.latency_hist.to_value()),
            ("energy_hist", self.energy_hist.to_value()),
        ])
    }

    /// Parse a report serialized by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed JSON, a wrong schema tag, or
    /// shape mismatches (worker count vs. array lengths).
    pub fn from_json(text: &str) -> Result<RunReport, JsonError> {
        Self::from_value(&Value::parse(text)?)
    }

    /// Extract a report from a parsed [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Same conditions as [`from_json`](Self::from_json).
    pub fn from_value(v: &Value) -> Result<RunReport, JsonError> {
        let field = |key: &str| {
            v.get(key).ok_or(JsonError {
                message: format!("missing field '{key}'"),
                offset: 0,
            })
        };
        let bad = |what: &str| JsonError {
            message: format!("invalid field '{what}'"),
            offset: 0,
        };
        let schema = field("schema")?.as_str().ok_or_else(|| bad("schema"))?;
        if schema != Self::SCHEMA {
            return Err(JsonError {
                message: format!(
                    "unsupported schema '{schema}' (expected '{}')",
                    Self::SCHEMA
                ),
                offset: 0,
            });
        }
        let workers = field("workers")?.as_u64().ok_or_else(|| bad("workers"))? as usize;
        let per_worker: Vec<WorkerTelemetry> = field("per_worker")?
            .as_arr()
            .ok_or_else(|| bad("per_worker"))?
            .iter()
            .map(worker_from_value)
            .collect::<Result<_, _>>()?;
        let steal_matrix: Vec<Vec<u64>> = field("steal_matrix")?
            .as_arr()
            .ok_or_else(|| bad("steal_matrix"))?
            .iter()
            .map(|row| {
                row.as_arr()
                    .ok_or_else(|| bad("steal_matrix row"))?
                    .iter()
                    .map(|n| n.as_u64().ok_or_else(|| bad("steal_matrix entry")))
                    .collect::<Result<Vec<u64>, _>>()
            })
            .collect::<Result<_, _>>()?;
        // Absent in pre-topology artifacts (the field arrived after
        // hermes-run-report/v1 shipped): default to "no histogram".
        let steal_distance_hist: Vec<u64> = match v.get("steal_distance_hist") {
            None => Vec::new(),
            Some(h) => h
                .as_arr()
                .ok_or_else(|| bad("steal_distance_hist"))?
                .iter()
                .map(|n| n.as_u64().ok_or_else(|| bad("steal_distance_hist entry")))
                .collect::<Result<_, _>>()?,
        };
        // Absent in artifacts written before the serving subsystem (the
        // same back-compat posture as steal_distance_hist): default to
        // an empty histogram.
        let latency_hist = match v.get("latency_hist") {
            None => LatencyHistogram::new(),
            Some(h) => LatencyHistogram::from_value(h)?,
        };
        // Absent in artifacts written before energy attribution (same
        // posture again): default to an empty histogram.
        let energy_hist = match v.get("energy_hist") {
            None => LatencyHistogram::new(),
            Some(h) => LatencyHistogram::from_value(h)?,
        };
        if per_worker.len() != workers
            || steal_matrix.len() != workers
            || steal_matrix.iter().any(|row| row.len() != workers)
        {
            return Err(JsonError {
                message: format!("report shape disagrees with workers={workers}"),
                offset: 0,
            });
        }
        Ok(RunReport {
            schema: schema.to_string(),
            label: field("label")?
                .as_str()
                .ok_or_else(|| bad("label"))?
                .to_string(),
            executor: field("executor")?
                .as_str()
                .ok_or_else(|| bad("executor"))?
                .to_string(),
            workers,
            elapsed_s: field("elapsed_s")?
                .as_f64()
                .ok_or_else(|| bad("elapsed_s"))?,
            energy_j: field("energy_j")?.as_f64().ok_or_else(|| bad("energy_j"))?,
            machine_energy_j: field("machine_energy_j")?
                .as_f64()
                .ok_or_else(|| bad("machine_energy_j"))?,
            per_worker,
            steal_matrix,
            steal_distance_hist,
            latency_hist,
            energy_hist,
        })
    }
}

fn worker_to_value(w: &WorkerTelemetry) -> Value {
    Value::obj(vec![
        ("steals", Value::Num(w.steals as f64)),
        ("empty_steals", Value::Num(w.empty_steals as f64)),
        ("lost_race_steals", Value::Num(w.lost_race_steals as f64)),
        ("path_downs", Value::Num(w.transitions.path_downs as f64)),
        ("relay_ups", Value::Num(w.transitions.relay_ups as f64)),
        (
            "workload_ups",
            Value::Num(w.transitions.workload_ups as f64),
        ),
        (
            "workload_downs",
            Value::Num(w.transitions.workload_downs as f64),
        ),
        ("actuations", Value::Num(w.actuations as f64)),
        ("energy_j", Value::Num(w.energy_j)),
        ("parks", Value::Num(w.parks as f64)),
        ("parked_ns", Value::Num(w.parked_ns as f64)),
        ("sleeps", Value::Num(w.sleeps as f64)),
        ("slept_ns", Value::Num(w.slept_ns as f64)),
        ("wakes", Value::Num(w.wakes as f64)),
        ("future_polls", Value::Num(w.future_polls as f64)),
        ("future_wakes", Value::Num(w.future_wakes as f64)),
        ("future_repushes", Value::Num(w.future_repushes as f64)),
        ("span_begins", Value::Num(w.span_begins as f64)),
        ("span_ends", Value::Num(w.span_ends as f64)),
        ("power_busy_ns", Value::Num(w.power_busy_ns as f64)),
        ("power_spin_ns", Value::Num(w.power_spin_ns as f64)),
        ("power_parked_ns", Value::Num(w.power_parked_ns as f64)),
        ("power_busy_j", Value::Num(w.power_busy_j)),
        ("power_spin_j", Value::Num(w.power_spin_j)),
        ("power_parked_j", Value::Num(w.power_parked_j)),
        ("dropped_events", Value::Num(w.dropped_events as f64)),
    ])
}

fn worker_from_value(v: &Value) -> Result<WorkerTelemetry, JsonError> {
    let num = |key: &str| {
        v.get(key).and_then(Value::as_u64).ok_or(JsonError {
            message: format!("invalid worker field '{key}'"),
            offset: 0,
        })
    };
    // Fields added after hermes-run-report/v1 shipped: absent means an
    // artifact from before the parking subsystem, i.e. zero.
    let num_or_zero = |key: &str| v.get(key).and_then(Value::as_u64).unwrap_or(0);
    let f64_or_zero = |key: &str| v.get(key).and_then(Value::as_f64).unwrap_or(0.0);
    Ok(WorkerTelemetry {
        steals: num("steals")?,
        empty_steals: num("empty_steals")?,
        lost_race_steals: num("lost_race_steals")?,
        transitions: TransitionMix {
            path_downs: num("path_downs")?,
            relay_ups: num("relay_ups")?,
            workload_ups: num("workload_ups")?,
            workload_downs: num("workload_downs")?,
        },
        actuations: num("actuations")?,
        energy_j: v.get("energy_j").and_then(Value::as_f64).ok_or(JsonError {
            message: "invalid worker field 'energy_j'".to_string(),
            offset: 0,
        })?,
        parks: num_or_zero("parks"),
        parked_ns: num_or_zero("parked_ns"),
        sleeps: num_or_zero("sleeps"),
        slept_ns: num_or_zero("slept_ns"),
        wakes: num_or_zero("wakes"),
        future_polls: num_or_zero("future_polls"),
        future_wakes: num_or_zero("future_wakes"),
        future_repushes: num_or_zero("future_repushes"),
        span_begins: num_or_zero("span_begins"),
        span_ends: num_or_zero("span_ends"),
        power_busy_ns: num_or_zero("power_busy_ns"),
        power_spin_ns: num_or_zero("power_spin_ns"),
        power_parked_ns: num_or_zero("power_parked_ns"),
        power_busy_j: f64_or_zero("power_busy_j"),
        power_spin_j: f64_or_zero("power_spin_j"),
        power_parked_j: f64_or_zero("power_parked_j"),
        dropped_events: num_or_zero("dropped_events"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        RunReport {
            schema: RunReport::SCHEMA.to_string(),
            label: "sort/B/w4/unified".to_string(),
            executor: "sim".to_string(),
            workers: 2,
            elapsed_s: 1.2345,
            energy_j: 42.125,
            machine_energy_j: 41.9,
            per_worker: vec![
                WorkerTelemetry {
                    steals: 10,
                    empty_steals: 3,
                    lost_race_steals: 1,
                    transitions: TransitionMix {
                        path_downs: 10,
                        relay_ups: 4,
                        workload_ups: 7,
                        workload_downs: 8,
                    },
                    actuations: 12,
                    energy_j: 21.0,
                    parks: 4,
                    parked_ns: 2_500_000,
                    sleeps: 3,
                    slept_ns: 9_000_000,
                    wakes: 2,
                    future_polls: 9,
                    future_wakes: 6,
                    future_repushes: 5,
                    span_begins: 30,
                    span_ends: 28,
                    power_busy_ns: 900_000_000,
                    power_spin_ns: 40_000_000,
                    power_parked_ns: 2_500_000,
                    power_busy_j: 20.5,
                    power_spin_j: 0.49,
                    power_parked_j: 0.01,
                    dropped_events: 2,
                },
                WorkerTelemetry {
                    steals: 5,
                    empty_steals: 0,
                    lost_race_steals: 2,
                    transitions: TransitionMix {
                        path_downs: 5,
                        relay_ups: 1,
                        workload_ups: 2,
                        workload_downs: 3,
                    },
                    actuations: 6,
                    energy_j: 21.125,
                    parks: 1,
                    parked_ns: 700_000,
                    sleeps: 1,
                    slept_ns: 4_000_000,
                    wakes: 1,
                    future_polls: 2,
                    future_wakes: 1,
                    future_repushes: 0,
                    span_begins: 4,
                    span_ends: 4,
                    power_busy_ns: 850_000_000,
                    power_spin_ns: 100_000_000,
                    power_parked_ns: 700_000,
                    power_busy_j: 19.9,
                    power_spin_j: 1.22,
                    power_parked_j: 0.005,
                    dropped_events: 0,
                },
            ],
            steal_matrix: vec![vec![0, 10], vec![5, 0]],
            steal_distance_hist: Vec::new(),
            latency_hist: {
                let mut h = LatencyHistogram::new();
                for ns in [40_000, 55_000, 900_000] {
                    h.record(ns);
                }
                h
            },
            energy_hist: {
                let mut h = LatencyHistogram::new();
                for uj in [8_000, 9_500, 30_000] {
                    h.record(uj);
                }
                h
            },
        }
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let report = sample();
        let json = report.to_json();
        let parsed = RunReport::from_json(&json).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn totals_and_mix_aggregate_workers() {
        let report = sample();
        let totals = report.totals();
        assert_eq!(totals.steals, 15);
        assert_eq!(totals.empty_steals, 3);
        assert_eq!(totals.lost_race_steals, 3);
        assert_eq!(totals.steal_attempts(), 21);
        assert_eq!(totals.actuations, 18);
        assert_eq!(totals.parks, 5);
        assert_eq!(totals.parked_ns, 3_200_000);
        assert!((totals.energy_j - 42.125).abs() < 1e-12);
        let mix = report.transition_mix();
        assert_eq!(mix.total(), 40);
        assert_eq!(
            mix,
            TransitionMix {
                path_downs: 15,
                relay_ups: 5,
                workload_ups: 9,
                workload_downs: 11,
            }
        );
        let fr = mix.fractions();
        assert!((fr.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((fr[0] - 0.375).abs() < 1e-12);
    }

    #[test]
    fn mix_distance_is_symmetric_and_zero_on_self() {
        let a = sample().transition_mix();
        let b = TransitionMix {
            path_downs: 1,
            relay_ups: 0,
            workload_ups: 0,
            workload_downs: 0,
        };
        assert_eq!(a.max_fraction_distance(&a), 0.0);
        assert!((a.max_fraction_distance(&b) - b.max_fraction_distance(&a)).abs() < 1e-12);
        assert!(a.max_fraction_distance(&b) > 0.5);
        assert_eq!(TransitionMix::default().fractions(), [0.0; 4]);
    }

    #[test]
    fn distance_histogram_partitions_the_matrix() {
        // sample(): worker 0 stole 10 from 1, worker 1 stole 5 from 0.
        // Same-domain layout (distance 1 both ways):
        let near = vec![vec![0, 1], vec![1, 0]];
        let r = sample().with_steal_distances(&near);
        assert_eq!(r.steal_distance_hist, vec![0, 15]);
        assert_eq!(r.steal_distance_total(), r.totals().steals);
        assert_eq!(r.same_domain_steal_fraction(), Some(1.0));
        // Cross-package layout: everything lands in bucket 3.
        let far = vec![vec![0, 3], vec![3, 0]];
        let r = sample().with_steal_distances(&far);
        assert_eq!(r.steal_distance_hist, vec![0, 0, 0, 15]);
        assert_eq!(r.same_domain_steal_fraction(), Some(0.0));
        // The histogram survives the JSON codec.
        let parsed = RunReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn missing_histogram_defaults_to_empty() {
        // Pre-topology artifacts have no steal_distance_hist field.
        let Value::Obj(pairs) = sample().to_value() else {
            panic!("reports serialize as objects");
        };
        let stripped = Value::Obj(
            pairs
                .into_iter()
                .filter(|(k, _)| k != "steal_distance_hist")
                .collect(),
        );
        let json = stripped.to_string_pretty();
        assert!(!json.contains("steal_distance_hist"));
        let parsed = RunReport::from_json(&json).unwrap();
        assert!(parsed.steal_distance_hist.is_empty());
        assert_eq!(parsed.same_domain_steal_fraction(), None);
        assert_eq!(parsed.steal_distance_total(), 0);
    }

    #[test]
    fn pre_serve_artifacts_parse_with_empty_latency_and_zero_parks() {
        // A report serialized before the serving subsystem has no
        // latency_hist field and no per-worker park counters; it must
        // parse to an empty histogram and zero parks (the same pattern
        // as steal_distance_hist above).
        let Value::Obj(pairs) = sample().to_value() else {
            panic!("reports serialize as objects");
        };
        let stripped = Value::Obj(
            pairs
                .into_iter()
                .filter(|(k, _)| k != "latency_hist")
                .map(|(k, v)| {
                    if k != "per_worker" {
                        return (k, v);
                    }
                    let Value::Arr(workers) = v else {
                        panic!("per_worker serializes as an array");
                    };
                    let workers = workers
                        .into_iter()
                        .map(|w| {
                            let Value::Obj(fields) = w else {
                                panic!("worker entries serialize as objects");
                            };
                            Value::Obj(
                                fields
                                    .into_iter()
                                    .filter(|(k, _)| k != "parks" && k != "parked_ns")
                                    .collect(),
                            )
                        })
                        .collect();
                    (k, Value::Arr(workers))
                })
                .collect(),
        );
        let json = stripped.to_string_pretty();
        assert!(!json.contains("latency_hist") && !json.contains("parks"));
        let parsed = RunReport::from_json(&json).unwrap();
        assert!(parsed.latency_hist.is_empty());
        assert_eq!(parsed.latency_hist.p99(), None);
        assert_eq!(parsed.totals().parks, 0);
        assert_eq!(parsed.totals().parked_ns, 0);
        // Everything that was present still round-trips.
        assert_eq!(parsed.totals().steals, sample().totals().steals);
    }

    #[test]
    fn pre_async_artifacts_parse_with_zero_future_counters() {
        // A report serialized before the futures-native task layer has
        // no per-worker poll/wake/re-push counters; absent means zero
        // (the steal_distance_hist posture: additive fields never break
        // old artifacts).
        let Value::Obj(pairs) = sample().to_value() else {
            panic!("reports serialize as objects");
        };
        let stripped = Value::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| {
                    if k != "per_worker" {
                        return (k, v);
                    }
                    let Value::Arr(workers) = v else {
                        panic!("per_worker serializes as an array");
                    };
                    let workers = workers
                        .into_iter()
                        .map(|w| {
                            let Value::Obj(fields) = w else {
                                panic!("worker entries serialize as objects");
                            };
                            Value::Obj(
                                fields
                                    .into_iter()
                                    .filter(|(k, _)| !k.starts_with("future_"))
                                    .collect(),
                            )
                        })
                        .collect();
                    (k, Value::Arr(workers))
                })
                .collect(),
        );
        let json = stripped.to_string_pretty();
        assert!(!json.contains("future_"));
        let parsed = RunReport::from_json(&json).unwrap();
        assert_eq!(parsed.totals().future_polls, 0);
        assert_eq!(parsed.totals().future_wakes, 0);
        assert_eq!(parsed.totals().future_repushes, 0);
        // Pre-existing counters are untouched by the defaulting.
        assert_eq!(parsed.totals().steals, sample().totals().steals);
        assert_eq!(parsed.totals().parks, sample().totals().parks);
        // And a modern round trip preserves the new counters exactly.
        let full = RunReport::from_json(&sample().to_json()).unwrap();
        assert_eq!(full.totals().future_polls, 11);
        assert_eq!(full.totals().future_wakes, 7);
        assert_eq!(full.totals().future_repushes, 5);
    }

    #[test]
    fn pre_span_artifacts_parse_with_zero_span_and_drop_counters() {
        // A PR 6-shaped report (written before causal spans and
        // dropped-event accounting) has no span_begins / span_ends /
        // dropped_events per-worker fields; absent means zero, and every
        // pre-existing counter is unaffected — the same additive-field
        // posture as steal_distance_hist and the future_* counters.
        let Value::Obj(pairs) = sample().to_value() else {
            panic!("reports serialize as objects");
        };
        let stripped = Value::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| {
                    if k != "per_worker" {
                        return (k, v);
                    }
                    let Value::Arr(workers) = v else {
                        panic!("per_worker serializes as an array");
                    };
                    let workers = workers
                        .into_iter()
                        .map(|w| {
                            let Value::Obj(fields) = w else {
                                panic!("worker entries serialize as objects");
                            };
                            Value::Obj(
                                fields
                                    .into_iter()
                                    .filter(|(k, _)| {
                                        !k.starts_with("span_") && k != "dropped_events"
                                    })
                                    .collect(),
                            )
                        })
                        .collect();
                    (k, Value::Arr(workers))
                })
                .collect(),
        );
        let json = stripped.to_string_pretty();
        assert!(!json.contains("span_") && !json.contains("dropped_events"));
        let parsed = RunReport::from_json(&json).unwrap();
        assert_eq!(parsed.totals().span_begins, 0);
        assert_eq!(parsed.totals().span_ends, 0);
        assert_eq!(parsed.totals().dropped_events, 0);
        assert_eq!(parsed.totals().steals, sample().totals().steals);
        assert_eq!(parsed.totals().future_polls, sample().totals().future_polls);
        // A modern round trip preserves the new counters exactly.
        let full = RunReport::from_json(&sample().to_json()).unwrap();
        assert_eq!(full.totals().span_begins, 34);
        assert_eq!(full.totals().span_ends, 32);
        assert_eq!(full.totals().dropped_events, 2);
    }

    #[test]
    fn pre_energy_artifacts_parse_with_empty_energy_fields() {
        // A PR 7-shaped report (written before energy attribution) has
        // no energy_hist and no per-worker power-interval fields; it
        // must parse with an empty energy histogram and zero power
        // counters — the latency_hist posture exactly.
        let Value::Obj(pairs) = sample().to_value() else {
            panic!("reports serialize as objects");
        };
        let stripped = Value::Obj(
            pairs
                .into_iter()
                .filter(|(k, _)| k != "energy_hist")
                .map(|(k, v)| {
                    if k != "per_worker" {
                        return (k, v);
                    }
                    let Value::Arr(workers) = v else {
                        panic!("per_worker serializes as an array");
                    };
                    let workers = workers
                        .into_iter()
                        .map(|w| {
                            let Value::Obj(fields) = w else {
                                panic!("worker entries serialize as objects");
                            };
                            Value::Obj(
                                fields
                                    .into_iter()
                                    .filter(|(k, _)| !k.starts_with("power_"))
                                    .collect(),
                            )
                        })
                        .collect();
                    (k, Value::Arr(workers))
                })
                .collect(),
        );
        let json = stripped.to_string_pretty();
        assert!(!json.contains("energy_hist") && !json.contains("power_"));
        let parsed = RunReport::from_json(&json).unwrap();
        assert!(parsed.energy_hist.is_empty());
        assert_eq!(parsed.energy_hist.p99(), None);
        let totals = parsed.totals();
        assert_eq!(totals.power_busy_ns, 0);
        assert_eq!(totals.power_spin_ns, 0);
        assert_eq!(totals.power_parked_ns, 0);
        assert_eq!(totals.power_busy_j, 0.0);
        assert_eq!(totals.power_spin_j, 0.0);
        assert_eq!(totals.power_parked_j, 0.0);
        // Pre-existing fields are unaffected by the defaulting.
        assert_eq!(totals.steals, sample().totals().steals);
        assert_eq!(parsed.latency_hist, sample().latency_hist);
        // A modern round trip preserves the new fields exactly.
        let full = RunReport::from_json(&sample().to_json()).unwrap();
        assert_eq!(full.energy_hist.count(), 3);
        assert_eq!(full.totals().power_busy_ns, 1_750_000_000);
        assert!((full.totals().power_busy_j - 40.4).abs() < 1e-9);
    }

    #[test]
    fn pre_elastic_artifacts_parse_with_zero_sleep_counters() {
        // A PR 9-shaped report (written before the elastic worker pool)
        // has no per-worker sleeps / slept_ns / wakes fields; absent
        // means zero, and every pre-existing counter is unaffected —
        // the same additive-field posture as parks and the future_*
        // counters.
        let Value::Obj(pairs) = sample().to_value() else {
            panic!("reports serialize as objects");
        };
        let stripped = Value::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| {
                    if k != "per_worker" {
                        return (k, v);
                    }
                    let Value::Arr(workers) = v else {
                        panic!("per_worker serializes as an array");
                    };
                    let workers = workers
                        .into_iter()
                        .map(|w| {
                            let Value::Obj(fields) = w else {
                                panic!("worker entries serialize as objects");
                            };
                            Value::Obj(
                                fields
                                    .into_iter()
                                    .filter(|(k, _)| {
                                        k != "sleeps" && k != "slept_ns" && k != "wakes"
                                    })
                                    .collect(),
                            )
                        })
                        .collect();
                    (k, Value::Arr(workers))
                })
                .collect(),
        );
        let json = stripped.to_string_pretty();
        // Quoted keys: "wakes" the substring would still match the
        // (present, older) future_wakes field.
        assert!(
            !json.contains("\"sleeps\"")
                && !json.contains("\"slept_ns\"")
                && !json.contains("\"wakes\"")
        );
        let parsed = RunReport::from_json(&json).unwrap();
        assert_eq!(parsed.totals().sleeps, 0);
        assert_eq!(parsed.totals().slept_ns, 0);
        assert_eq!(parsed.totals().wakes, 0);
        // Pre-existing counters are untouched by the defaulting.
        assert_eq!(parsed.totals().steals, sample().totals().steals);
        assert_eq!(parsed.totals().parks, sample().totals().parks);
        assert_eq!(parsed.totals().parked_ns, sample().totals().parked_ns);
        // A modern round trip preserves the new counters exactly.
        let full = RunReport::from_json(&sample().to_json()).unwrap();
        assert_eq!(full.totals().sleeps, 4);
        assert_eq!(full.totals().slept_ns, 13_000_000);
        assert_eq!(full.totals().wakes, 3);
    }

    #[test]
    fn latency_histogram_survives_report_json() {
        let report = sample();
        let parsed = RunReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed.latency_hist, report.latency_hist);
        assert_eq!(parsed.latency_hist.count(), 3);
        // A malformed histogram is a parse error, not a silent default.
        let Value::Obj(mut pairs) = report.to_value() else {
            panic!("reports serialize as objects");
        };
        for (k, v) in &mut pairs {
            if k == "latency_hist" {
                *v = Value::Str("not a histogram".to_string());
            }
        }
        assert!(RunReport::from_value(&Value::Obj(pairs)).is_err());
    }

    #[test]
    #[should_panic(expected = "distance matrix")]
    fn wrong_shape_distance_matrix_panics() {
        let _ = sample().with_steal_distances(&[vec![0, 1, 2]]);
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let mut report = sample();
        report.schema = "something-else/v9".to_string();
        let err = RunReport::from_json(&report.to_json()).unwrap_err();
        assert!(err.message.contains("unsupported schema"), "{err}");
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let mut report = sample();
        report.steal_matrix[0].push(7);
        let err = RunReport::from_json(&report.to_json()).unwrap_err();
        assert!(err.message.contains("shape"), "{err}");
        let mut report = sample();
        report.per_worker.pop();
        assert!(RunReport::from_json(&report.to_json()).is_err());
    }

    #[test]
    fn missing_fields_are_reported_by_name() {
        let err = RunReport::from_json("{}").unwrap_err();
        assert!(err.message.contains("schema"), "{err}");
    }
}
