//! Sinks: where hosts put events.

use crate::latency::LatencyRecorder;
use crate::ring::DEFAULT_RING_CAPACITY;
use crate::{
    Event, EventRing, LatencyHistogram, PowerKind, RunReport, StealOutcome, TransitionMix,
    WorkerTelemetry,
};
use hermes_core::TransitionKind;
use std::sync::atomic::{AtomicU64, Ordering};

/// Stream index for machine-level events (the simulated supply-rail
/// meter) that belong to no single worker.
pub const MACHINE_STREAM: usize = usize::MAX;

/// Destination for telemetry events.
///
/// Hosts (the rt pool, the sim engine, the power meter) call
/// [`record`](Self::record) from their hot paths; implementations must be
/// lock-free or free of work entirely. `worker` is the stream the event
/// belongs to — the dense worker index, or [`MACHINE_STREAM`]. `at_ns` is
/// host time: virtual nanoseconds in the simulator, nanoseconds since
/// pool start in the runtime.
pub trait TelemetrySink: Send + Sync + std::fmt::Debug {
    /// Record one event on `worker`'s stream.
    fn record(&self, worker: usize, at_ns: u64, event: Event);

    /// Record a controller [`TransitionRecord`] — the single home of
    /// the record-to-event conversion, shared by every host draining
    /// [`TempoController::drain_transitions`]
    /// (hermes_core::TempoController::drain_transitions), so sim and rt
    /// cannot silently diverge on the mapping.
    fn record_transition(&self, at_ns: u64, record: hermes_core::TransitionRecord) {
        self.record(
            record.worker.0,
            at_ns,
            Event::TempoTransition {
                kind: record.kind,
                level: record.level.0 as u32,
            },
        );
    }

    /// Whether this sink discards everything. Hosts use this to skip
    /// instrumentation entirely (timestamps, controller tracing) when
    /// handed a [`NullSink`], making the null default zero-cost rather
    /// than merely cheap.
    fn is_null(&self) -> bool {
        false
    }

    /// Events this sink has had to drop (ring overwrites on bounded
    /// sinks). Hosts surface the total in live metrics so a saturated
    /// ring is visible before the end-of-run report. Unbounded and
    /// discarding sinks report 0.
    fn dropped_events(&self) -> u64 {
        0
    }
}

/// A sink that drops everything: the default when telemetry is off.
///
/// `record` compiles to an empty body, so a host that always funnels
/// events through a sink reference pays one virtual call and nothing
/// else; hosts in this workspace go further and hold `Option<Arc<dyn
/// TelemetrySink>>`, skipping even the call (and the timestamp read)
/// when no sink is attached.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    #[inline]
    fn record(&self, _worker: usize, _at_ns: u64, _event: Event) {}

    fn is_null(&self) -> bool {
        true
    }
}

/// Exact per-stream aggregates, maintained lock-free alongside the ring.
///
/// Rings are bounded and overwrite on wraparound, so they cannot back
/// exact totals; the tally keeps monotone counters updated with relaxed
/// `fetch_add` on every record, which is what
/// [`RingSink::report`] folds into a [`RunReport`].
#[derive(Debug)]
struct Tally {
    steal_success: AtomicU64,
    steal_empty: AtomicU64,
    steal_lost_race: AtomicU64,
    /// Successful steals by victim index (the steal-matrix row).
    victims: Box<[AtomicU64]>,
    path_downs: AtomicU64,
    relay_ups: AtomicU64,
    workload_ups: AtomicU64,
    workload_downs: AtomicU64,
    actuations: AtomicU64,
    energy_uj: AtomicU64,
    parks: AtomicU64,
    parked_ns: AtomicU64,
    sleeps: AtomicU64,
    slept_ns: AtomicU64,
    wakes: AtomicU64,
    future_polls: AtomicU64,
    future_wakes: AtomicU64,
    future_repushes: AtomicU64,
    span_begins: AtomicU64,
    span_ends: AtomicU64,
    /// Request latencies completed on this stream (merged across
    /// streams into [`RunReport::latency_hist`] at fold time).
    latency: LatencyRecorder,
    /// Per-class power-interval time, ns. Indexed by the
    /// [`PowerKind`] code order (busy, spin, parked).
    power_ns: [AtomicU64; 3],
    /// Per-class power-interval energy, **picojoules** (mW × ns — the
    /// exact product each interval encodes, so the per-class sum
    /// reproduces the host's cumulative meter without rounding drift).
    power_pj: [AtomicU64; 3],
    /// Per-request attributed energies, µJ (merged across streams into
    /// [`RunReport::energy_hist`] at fold time; the recorder's buckets
    /// are unit-agnostic).
    request_energy: LatencyRecorder,
}

fn power_kind_slot(kind: PowerKind) -> usize {
    match kind {
        PowerKind::Busy => 0,
        PowerKind::Spin => 1,
        PowerKind::Parked => 2,
    }
}

impl Tally {
    fn new(workers: usize) -> Self {
        Tally {
            steal_success: AtomicU64::new(0),
            steal_empty: AtomicU64::new(0),
            steal_lost_race: AtomicU64::new(0),
            victims: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            path_downs: AtomicU64::new(0),
            relay_ups: AtomicU64::new(0),
            workload_ups: AtomicU64::new(0),
            workload_downs: AtomicU64::new(0),
            actuations: AtomicU64::new(0),
            energy_uj: AtomicU64::new(0),
            parks: AtomicU64::new(0),
            parked_ns: AtomicU64::new(0),
            sleeps: AtomicU64::new(0),
            slept_ns: AtomicU64::new(0),
            wakes: AtomicU64::new(0),
            future_polls: AtomicU64::new(0),
            future_wakes: AtomicU64::new(0),
            future_repushes: AtomicU64::new(0),
            span_begins: AtomicU64::new(0),
            span_ends: AtomicU64::new(0),
            latency: LatencyRecorder::new(),
            power_ns: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
            power_pj: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
            request_energy: LatencyRecorder::new(),
        }
    }

    fn apply(&self, event: Event) {
        match event {
            Event::StealAttempt { victim, outcome } => match outcome {
                StealOutcome::Success => {
                    self.steal_success.fetch_add(1, Ordering::Relaxed);
                    if let Some(slot) = self.victims.get(victim as usize) {
                        slot.fetch_add(1, Ordering::Relaxed);
                    }
                }
                StealOutcome::Empty => {
                    self.steal_empty.fetch_add(1, Ordering::Relaxed);
                }
                StealOutcome::LostRace => {
                    self.steal_lost_race.fetch_add(1, Ordering::Relaxed);
                }
            },
            Event::TempoTransition { kind, .. } => {
                let counter = match kind {
                    TransitionKind::PathDown => &self.path_downs,
                    TransitionKind::RelayUp => &self.relay_ups,
                    TransitionKind::WorkloadUp => &self.workload_ups,
                    TransitionKind::WorkloadDown => &self.workload_downs,
                };
                counter.fetch_add(1, Ordering::Relaxed);
            }
            Event::DvfsActuation { .. } => {
                self.actuations.fetch_add(1, Ordering::Relaxed);
            }
            Event::EnergySample { microjoules } => {
                self.energy_uj.fetch_add(microjoules, Ordering::Relaxed);
            }
            Event::WorkerPark => {
                self.parks.fetch_add(1, Ordering::Relaxed);
            }
            Event::WorkerUnpark { parked_ns } => {
                self.parked_ns.fetch_add(parked_ns, Ordering::Relaxed);
            }
            Event::RequestLatency { ns } => {
                self.latency.record(ns);
            }
            Event::TaskPoll => {
                self.future_polls.fetch_add(1, Ordering::Relaxed);
            }
            Event::TaskWake => {
                self.future_wakes.fetch_add(1, Ordering::Relaxed);
            }
            Event::TaskRepush => {
                self.future_repushes.fetch_add(1, Ordering::Relaxed);
            }
            Event::SpanBegin { .. } => {
                self.span_begins.fetch_add(1, Ordering::Relaxed);
            }
            Event::SpanEnd { .. } => {
                self.span_ends.fetch_add(1, Ordering::Relaxed);
            }
            Event::PowerInterval {
                kind,
                duration_ns,
                milliwatts,
            } => {
                let slot = power_kind_slot(kind);
                self.power_ns[slot].fetch_add(duration_ns, Ordering::Relaxed);
                self.power_pj[slot].fetch_add(duration_ns * milliwatts, Ordering::Relaxed);
            }
            Event::RequestEnergy { microjoules } => {
                self.request_energy.record(microjoules);
            }
            Event::WorkerSleep => {
                self.sleeps.fetch_add(1, Ordering::Relaxed);
            }
            Event::WorkerWake { slept_ns, .. } => {
                self.wakes.fetch_add(1, Ordering::Relaxed);
                self.slept_ns.fetch_add(slept_ns, Ordering::Relaxed);
            }
        }
    }

    fn worker_telemetry(&self) -> WorkerTelemetry {
        WorkerTelemetry {
            steals: self.steal_success.load(Ordering::Relaxed),
            empty_steals: self.steal_empty.load(Ordering::Relaxed),
            lost_race_steals: self.steal_lost_race.load(Ordering::Relaxed),
            transitions: TransitionMix {
                path_downs: self.path_downs.load(Ordering::Relaxed),
                relay_ups: self.relay_ups.load(Ordering::Relaxed),
                workload_ups: self.workload_ups.load(Ordering::Relaxed),
                workload_downs: self.workload_downs.load(Ordering::Relaxed),
            },
            actuations: self.actuations.load(Ordering::Relaxed),
            energy_j: self.energy_uj.load(Ordering::Relaxed) as f64 / 1e6,
            parks: self.parks.load(Ordering::Relaxed),
            parked_ns: self.parked_ns.load(Ordering::Relaxed),
            sleeps: self.sleeps.load(Ordering::Relaxed),
            slept_ns: self.slept_ns.load(Ordering::Relaxed),
            wakes: self.wakes.load(Ordering::Relaxed),
            future_polls: self.future_polls.load(Ordering::Relaxed),
            future_wakes: self.future_wakes.load(Ordering::Relaxed),
            future_repushes: self.future_repushes.load(Ordering::Relaxed),
            span_begins: self.span_begins.load(Ordering::Relaxed),
            span_ends: self.span_ends.load(Ordering::Relaxed),
            power_busy_ns: self.power_ns[0].load(Ordering::Relaxed),
            power_spin_ns: self.power_ns[1].load(Ordering::Relaxed),
            power_parked_ns: self.power_ns[2].load(Ordering::Relaxed),
            power_busy_j: self.power_pj[0].load(Ordering::Relaxed) as f64 / 1e12,
            power_spin_j: self.power_pj[1].load(Ordering::Relaxed) as f64 / 1e12,
            power_parked_j: self.power_pj[2].load(Ordering::Relaxed) as f64 / 1e12,
            // Ring drops belong to the stream, not the tally; report()
            // fills this from EventRing::dropped().
            dropped_events: 0,
        }
    }
}

struct Stream {
    ring: EventRing,
    tally: Tally,
}

/// The standard sink: one bounded [`EventRing`] plus exact tallies per
/// worker stream, and one extra stream for machine-level events.
///
/// ```
/// use hermes_telemetry::{Event, RingSink, StealOutcome, TelemetrySink};
/// let sink = RingSink::new(2);
/// sink.record(0, 10, Event::StealAttempt { victim: 1, outcome: StealOutcome::Success });
/// sink.record(0, 20, Event::StealAttempt { victim: 1, outcome: StealOutcome::Empty });
/// let report = sink.report("demo", "doc", 0.5, 1.25);
/// assert_eq!(report.per_worker[0].steals, 1);
/// assert_eq!(report.per_worker[0].empty_steals, 1);
/// assert_eq!(report.steal_matrix[0][1], 1);
/// ```
pub struct RingSink {
    streams: Vec<Stream>,
    workers: usize,
}

impl std::fmt::Debug for RingSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingSink")
            .field("workers", &self.workers)
            .field("ring_capacity", &self.streams[0].ring.capacity())
            .finish()
    }
}

impl RingSink {
    /// A sink for `workers` worker streams with the default per-stream
    /// ring capacity.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is 0.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        Self::with_ring_capacity(workers, DEFAULT_RING_CAPACITY)
    }

    /// A sink with an explicit per-stream ring capacity.
    ///
    /// # Panics
    ///
    /// Panics if `workers` or `ring_capacity` is 0.
    #[must_use]
    pub fn with_ring_capacity(workers: usize, ring_capacity: usize) -> Self {
        assert!(workers > 0, "at least one worker stream is required");
        RingSink {
            // workers + 1: the last stream is MACHINE_STREAM.
            streams: (0..=workers)
                .map(|_| Stream {
                    ring: EventRing::new(ring_capacity),
                    tally: Tally::new(workers),
                })
                .collect(),
            workers,
        }
    }

    /// Number of worker streams (excluding the machine stream).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Map a stream id to its slot: worker ids below `workers`, or
    /// [`MACHINE_STREAM`] onto the extra machine slot. Anything else is
    /// a caller indexing bug; `None` lets `record` drop the event
    /// instead of silently misattributing it to another stream.
    fn stream_index(&self, worker: usize) -> Option<usize> {
        if worker == MACHINE_STREAM {
            Some(self.workers)
        } else if worker < self.workers {
            Some(worker)
        } else {
            None
        }
    }

    /// The event ring of `worker`'s stream (or [`MACHINE_STREAM`]).
    ///
    /// # Panics
    ///
    /// Panics if `worker` is neither a valid worker index nor
    /// [`MACHINE_STREAM`].
    #[must_use]
    pub fn ring(&self, worker: usize) -> &EventRing {
        let idx = self
            .stream_index(worker)
            .expect("ring(): unknown stream id");
        &self.streams[idx].ring
    }

    /// Fold the tallies into a [`RunReport`].
    ///
    /// `elapsed_s` and `energy_j` come from the host's authoritative
    /// clock and energy model (the simulator's integrator, the pool's
    /// emulated-DVFS accountant); per-worker energies and the machine
    /// stream's metered energy come from the recorded
    /// [`Event::EnergySample`]s.
    #[must_use]
    pub fn report(&self, label: &str, executor: &str, elapsed_s: f64, energy_j: f64) -> RunReport {
        let per_worker: Vec<WorkerTelemetry> = self.streams[..self.workers]
            .iter()
            .map(|s| {
                let mut w = s.tally.worker_telemetry();
                w.dropped_events = s.ring.dropped();
                w
            })
            .collect();
        let steal_matrix = self.streams[..self.workers]
            .iter()
            .map(|s| {
                s.tally
                    .victims
                    .iter()
                    .map(|v| v.load(Ordering::Relaxed))
                    .collect()
            })
            .collect();
        let machine = self.streams[self.workers].tally.worker_telemetry();
        // Request latencies merge across every stream (workers plus the
        // machine stream, where hosts without a worker context record).
        // Per-request energies merge the same way.
        let mut latency_hist = LatencyHistogram::new();
        let mut energy_hist = LatencyHistogram::new();
        for s in &self.streams {
            latency_hist.merge(&s.tally.latency.snapshot());
            energy_hist.merge(&s.tally.request_energy.snapshot());
        }
        RunReport {
            schema: RunReport::SCHEMA.to_string(),
            label: label.to_string(),
            executor: executor.to_string(),
            workers: self.workers,
            elapsed_s,
            energy_j,
            machine_energy_j: machine.energy_j,
            per_worker,
            steal_matrix,
            steal_distance_hist: Vec::new(),
            latency_hist,
            energy_hist,
        }
    }
}

impl TelemetrySink for RingSink {
    fn record(&self, worker: usize, at_ns: u64, event: Event) {
        // Out-of-range stream ids (a caller indexing bug) drop the
        // event rather than corrupting another stream's telemetry.
        let Some(idx) = self.stream_index(worker) else {
            return;
        };
        let stream = &self.streams[idx];
        stream.tally.apply(event);
        stream.ring.record(at_ns, event);
    }

    fn dropped_events(&self) -> u64 {
        self.streams.iter().map(|s| s.ring.dropped()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_inert() {
        let sink = NullSink;
        sink.record(
            3,
            1,
            Event::StealAttempt {
                victim: 0,
                outcome: StealOutcome::Success,
            },
        );
        assert!(sink.is_null(), "hosts key off this to skip instrumentation");
        assert!(!RingSink::new(1).is_null());
    }

    #[test]
    fn tallies_fold_into_report() {
        let sink = RingSink::new(3);
        // Worker 0 steals twice from 1, once from 2, loses one race,
        // sees one empty deque.
        for victim in [1, 1, 2] {
            sink.record(
                0,
                0,
                Event::StealAttempt {
                    victim,
                    outcome: StealOutcome::Success,
                },
            );
        }
        sink.record(
            0,
            0,
            Event::StealAttempt {
                victim: 2,
                outcome: StealOutcome::LostRace,
            },
        );
        sink.record(
            0,
            0,
            Event::StealAttempt {
                victim: 1,
                outcome: StealOutcome::Empty,
            },
        );
        sink.record(
            0,
            0,
            Event::TempoTransition {
                kind: TransitionKind::PathDown,
                level: 1,
            },
        );
        sink.record(
            1,
            0,
            Event::TempoTransition {
                kind: TransitionKind::RelayUp,
                level: 0,
            },
        );
        sink.record(
            1,
            0,
            Event::DvfsActuation {
                freq_khz: 1_600_000,
            },
        );
        sink.record(
            2,
            0,
            Event::EnergySample {
                microjoules: 2_500_000,
            },
        );
        sink.record(
            MACHINE_STREAM,
            0,
            Event::EnergySample {
                microjoules: 7_000_000,
            },
        );

        let report = sink.report("unit", "test", 1.0, 9.5);
        assert_eq!(report.workers, 3);
        assert_eq!(report.per_worker[0].steals, 3);
        assert_eq!(report.per_worker[0].empty_steals, 1);
        assert_eq!(report.per_worker[0].lost_race_steals, 1);
        assert_eq!(report.per_worker[0].transitions.path_downs, 1);
        assert_eq!(report.per_worker[1].transitions.relay_ups, 1);
        assert_eq!(report.per_worker[1].actuations, 1);
        assert!((report.per_worker[2].energy_j - 2.5).abs() < 1e-9);
        assert!((report.machine_energy_j - 7.0).abs() < 1e-9);
        assert_eq!(report.steal_matrix[0], vec![0, 2, 1]);
        assert_eq!(report.steal_matrix[1], vec![0, 0, 0]);
        let totals = report.totals();
        assert_eq!(totals.steals, 3);
        assert_eq!(totals.transitions.total(), 2);
    }

    #[test]
    fn span_tallies_and_ring_drops_fold_into_report() {
        use crate::event::SpanPhase;
        // A 4-slot ring: 6 events on worker 0 leave 2 dropped, all 6
        // still tallied exactly.
        let sink = RingSink::with_ring_capacity(2, 4);
        for id in 0..3u64 {
            sink.record(
                0,
                id,
                Event::SpanBegin {
                    id,
                    phase: SpanPhase::Queued,
                },
            );
            sink.record(
                0,
                id + 10,
                Event::SpanEnd {
                    id,
                    phase: SpanPhase::Queued,
                },
            );
        }
        let r = sink.report("spans", "test", 0.0, 0.0);
        assert_eq!(r.per_worker[0].span_begins, 3);
        assert_eq!(r.per_worker[0].span_ends, 3);
        assert_eq!(r.per_worker[0].dropped_events, 2);
        assert_eq!(r.per_worker[1].dropped_events, 0);
        assert_eq!(r.totals().span_begins, 3);
        assert_eq!(r.totals().dropped_events, 2);
        // Default capacity drops nothing at this volume.
        let roomy = RingSink::new(1);
        roomy.record(
            0,
            0,
            Event::SpanBegin {
                id: 1,
                phase: SpanPhase::Poll,
            },
        );
        let r = roomy.report("spans", "test", 0.0, 0.0);
        assert_eq!(r.per_worker[0].dropped_events, 0);
        assert_eq!(r.per_worker[0].span_begins, 1);
    }

    #[test]
    fn energy_from_joules_lands_on_worker_streams() {
        let sink = RingSink::new(2);
        sink.record(0, 5, Event::energy_from_joules(1.5));
        sink.record(1, 5, Event::energy_from_joules(0.25));
        sink.record(1, 6, Event::energy_from_joules(-3.0)); // clamped
        let r = sink.report("e", "test", 0.0, 0.0);
        assert!((r.per_worker[0].energy_j - 1.5).abs() < 1e-9);
        assert!((r.per_worker[1].energy_j - 0.25).abs() < 1e-9);
    }

    #[test]
    fn power_intervals_and_request_energy_fold_into_report() {
        let sink = RingSink::new(2);
        // Worker 0: 1 ms busy at 8 W, 0.5 ms spinning at 2 W, 2 ms
        // parked at 400 mW. Worker 1: idle the whole time.
        sink.record(
            0,
            1_000_000,
            Event::PowerInterval {
                kind: PowerKind::Busy,
                duration_ns: 1_000_000,
                milliwatts: 8_000,
            },
        );
        sink.record(
            0,
            1_500_000,
            Event::PowerInterval {
                kind: PowerKind::Spin,
                duration_ns: 500_000,
                milliwatts: 2_000,
            },
        );
        sink.record(
            0,
            3_500_000,
            Event::PowerInterval {
                kind: PowerKind::Parked,
                duration_ns: 2_000_000,
                milliwatts: 400,
            },
        );
        sink.record(0, 3_500_000, Event::RequestEnergy { microjoules: 8_000 });
        sink.record(0, 3_500_000, Event::RequestEnergy { microjoules: 100 });
        let r = sink.report("power", "test", 0.0035, 0.0);
        let w = &r.per_worker[0];
        assert_eq!(w.power_busy_ns, 1_000_000);
        assert_eq!(w.power_spin_ns, 500_000);
        assert_eq!(w.power_parked_ns, 2_000_000);
        // 8 W × 1 ms = 8 mJ, 2 W × 0.5 ms = 1 mJ, 0.4 W × 2 ms = 0.8 mJ,
        // each exact in picojoules.
        assert!((w.power_busy_j - 8e-3).abs() < 1e-15);
        assert!((w.power_spin_j - 1e-3).abs() < 1e-15);
        assert!((w.power_parked_j - 0.8e-3).abs() < 1e-15);
        assert_eq!(r.per_worker[1].power_busy_ns, 0);
        assert_eq!(r.energy_hist.count(), 2);
        let totals = r.totals();
        assert!((totals.power_busy_j - 8e-3).abs() < 1e-15);
        assert_eq!(totals.power_parked_ns, 2_000_000);
    }

    #[test]
    fn sleep_wake_brackets_fold_into_report() {
        use crate::event::WakeReason;
        let sink = RingSink::new(2);
        // Worker 1 sleeps twice; the second episode is still open at
        // report time (sleeps = 2, wakes = 1), slept time rides the
        // wake like parked time rides the unpark.
        sink.record(1, 0, Event::WorkerSleep);
        sink.record(
            1,
            5_000_000,
            Event::WorkerWake {
                reason: WakeReason::Signal,
                slept_ns: 5_000_000,
            },
        );
        sink.record(1, 6_000_000, Event::WorkerSleep);
        let r = sink.report("elastic", "test", 0.006, 0.0);
        assert_eq!(r.per_worker[1].sleeps, 2);
        assert_eq!(r.per_worker[1].wakes, 1);
        assert_eq!(r.per_worker[1].slept_ns, 5_000_000);
        assert_eq!(r.per_worker[0].sleeps, 0);
        let totals = r.totals();
        assert_eq!(totals.sleeps, 2);
        assert_eq!(totals.wakes, 1);
        assert_eq!(totals.slept_ns, 5_000_000);
    }

    #[test]
    fn sink_dropped_events_totals_across_streams() {
        let sink = RingSink::with_ring_capacity(2, 4);
        assert_eq!(TelemetrySink::dropped_events(&sink), 0);
        for i in 0..6u64 {
            sink.record(0, i, Event::TaskPoll);
            sink.record(MACHINE_STREAM, i, Event::TaskWake);
        }
        // 6 events into 4 slots on two streams: 2 dropped on each.
        assert_eq!(TelemetrySink::dropped_events(&sink), 4);
        assert_eq!(NullSink.dropped_events(), 0);
    }

    #[test]
    fn out_of_range_victims_do_not_panic() {
        let sink = RingSink::new(2);
        sink.record(
            0,
            0,
            Event::StealAttempt {
                victim: 99,
                outcome: StealOutcome::Success,
            },
        );
        let r = sink.report("oob", "test", 0.0, 0.0);
        assert_eq!(r.per_worker[0].steals, 1);
        assert_eq!(r.steal_matrix[0], vec![0, 0]);
    }

    #[test]
    fn out_of_range_worker_streams_drop_events() {
        // Worker id 2 on a 2-worker sink is a caller bug, NOT the
        // machine stream: the event must vanish, not corrupt
        // machine-level telemetry.
        let sink = RingSink::new(2);
        sink.record(2, 0, Event::energy_from_joules(7.0));
        sink.record(usize::MAX - 1, 0, Event::energy_from_joules(7.0));
        let r = sink.report("drop", "test", 0.0, 0.0);
        assert_eq!(r.machine_energy_j, 0.0);
        assert!(r.per_worker.iter().all(|w| w.energy_j == 0.0));
        assert_eq!(sink.ring(MACHINE_STREAM).recorded(), 0);
    }
}
