//! A dependency-free JSON value, writer, and parser.
//!
//! The container this workspace builds in has no crates.io access, so
//! report persistence cannot lean on `serde`. This module implements the
//! small subset of JSON the telemetry artifacts need: finite numbers,
//! strings with standard escapes, arrays, objects (order-preserving),
//! booleans and null. Integers up to 2⁵³ round-trip exactly through the
//! `f64` number representation — every counter in a [`RunReport`]
//! (crate::RunReport) is far below that.

use std::fmt;

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers exact up to 2⁵³).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved on write.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Build an object from key/value pairs.
    #[must_use]
    pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Look up a key in an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite float, if it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a non-negative whole
    /// number within exact `f64` range.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Parse a JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with a byte offset on malformed input or
    /// trailing garbage.
    pub fn parse(text: &str) -> Result<Value, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Serialize with two-space indentation (the artifact format checked
    /// into the repo, so diffs stay reviewable).
    #[must_use]
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Value::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Value::Obj(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => {
                use fmt::Write;
                let _ = write!(out, "{other}");
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    /// Compact (single-line) serialization.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(n) => {
                if !n.is_finite() {
                    // JSON has no NaN/Inf; reports never produce them.
                    f.write_str("null")
                } else if n.fract() == 0.0 && n.abs() <= 9_007_199_254_740_992.0 {
                    write!(f, "{}", *n as i64)
                } else {
                    // `{:?}` prints the shortest digits that round-trip.
                    write!(f, "{n:?}")
                }
            }
            Value::Str(s) => {
                let mut buf = String::new();
                write_string(&mut buf, s);
                f.write_str(&buf)
            }
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut key = String::new();
                    write_string(&mut key, k);
                    write!(f, "{key}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Error from [`Value::parse`]: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Nesting bound for the recursive-descent parser: one recursion per
/// level, so unbounded nesting in a corrupt/adversarial artifact would
/// abort with a stack overflow instead of a clean error. Telemetry
/// documents nest ~4 deep; 128 is generous.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than 128 levels"));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.enter()?;
        let r = self.array_inner();
        self.depth -= 1;
        r
    }

    fn array_inner(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.enter()?;
        let r = self.object_inner();
        self.depth -= 1;
        r
    }

    fn object_inner(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect a \uXXXX low
                                // half, and reject anything outside the
                                // low-surrogate range instead of
                                // silently mis-decoding.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&lo) {
                                        char::from_u32(
                                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00),
                                        )
                                    } else {
                                        None
                                    }
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            // hex4 advanced past the digits; compensate
                            // for the shared `pos += 1` below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("expected four hex digits")),
            };
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Value) {
        let compact = v.to_string();
        assert_eq!(&Value::parse(&compact).unwrap(), v, "compact: {compact}");
        let pretty = v.to_string_pretty();
        assert_eq!(&Value::parse(&pretty).unwrap(), v, "pretty: {pretty}");
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(&Value::Null);
        round_trip(&Value::Bool(true));
        round_trip(&Value::Bool(false));
        round_trip(&Value::Num(0.0));
        round_trip(&Value::Num(-17.0));
        round_trip(&Value::Num(0.1));
        round_trip(&Value::Num(1.5e-12));
        round_trip(&Value::Num(9_007_199_254_740_992.0));
        round_trip(&Value::Str("plain".into()));
        round_trip(&Value::Str(
            "quotes \" and \\ and\nnewlines\tтабы 🎉".into(),
        ));
    }

    #[test]
    fn containers_round_trip() {
        round_trip(&Value::Arr(vec![]));
        round_trip(&Value::Obj(vec![]));
        round_trip(&Value::obj(vec![
            ("a", Value::Num(1.0)),
            ("b", Value::Arr(vec![Value::Null, Value::Bool(false)])),
            ("nested", Value::obj(vec![("x", Value::Str("y".into()))])),
        ]));
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Value::Num(42.0).to_string(), "42");
        assert_eq!(Value::Num(-3.0).to_string(), "-3");
        assert_eq!(Value::Num(2.5).to_string(), "2.5");
    }

    #[test]
    fn parses_standard_escapes_and_unicode() {
        let v = Value::parse(r#""a\"b\\c\/dAé🎉""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\"b\\c/dAé🎉");
        // Explicit \u escapes, including a surrogate pair (🎉).
        let v = Value::parse("\"\\u0041\\ud83c\\udf89\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "A🎉");
    }

    #[test]
    fn invalid_surrogate_pairs_are_rejected() {
        // High surrogate followed by a non-low-surrogate escape.
        assert!(Value::parse(r#""\ud800A""#).is_err());
        // High surrogate followed by a plain character.
        assert!(Value::parse(r#""\ud800x""#).is_err());
        // Lone low surrogate.
        assert!(Value::parse(r#""\udc00""#).is_err());
    }

    #[test]
    fn accessors() {
        let v = Value::obj(vec![
            ("n", Value::Num(7.0)),
            ("s", Value::Str("x".into())),
            ("b", Value::Bool(true)),
            ("a", Value::Arr(vec![Value::Num(1.0)])),
        ]);
        assert_eq!(v.get("n").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(7.0));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(v.get("missing"), None);
        assert_eq!(Value::Num(2.5).as_u64(), None);
        assert_eq!(Value::Num(-1.0).as_u64(), None);
    }

    #[test]
    fn malformed_inputs_error_with_offsets() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "01a",
            "[1] garbage",
            "{\"a\":}",
            "nul",
            "\"bad \\q escape\"",
        ] {
            let e = Value::parse(bad).unwrap_err();
            assert!(!e.message.is_empty(), "{bad:?} -> {e}");
        }
    }

    #[test]
    fn pathological_nesting_errors_instead_of_overflowing() {
        let deep = "[".repeat(2_000_000);
        let e = Value::parse(&deep).unwrap_err();
        assert!(e.message.contains("nesting"), "{e}");
        // A document at a sane depth still parses.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(Value::parse(&ok).is_ok());
        let too_deep = format!("{}1{}", "[".repeat(200), "]".repeat(200));
        assert!(Value::parse(&too_deep).is_err());
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = Value::parse(" {\n \"a\" : [ 1 , 2 ] \t}\r\n").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(Value::Num(f64::NAN).to_string(), "null");
        assert_eq!(Value::Num(f64::INFINITY).to_string(), "null");
    }
}
