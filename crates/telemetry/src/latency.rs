//! Log-bucketed latency histograms for the request-serving path.
//!
//! The serving layer records one latency sample per completed request;
//! at millions of requests that must be O(1) per sample, fixed-memory,
//! and mergeable across workers. The classic answer is a log-linear
//! histogram (the HDR-histogram layout): values bucket by their power
//! of two (the *octave*), with each octave split into 16 linear
//! sub-buckets — four significant bits of resolution, a worst-case
//! relative error of 1/16 ≈ 6.25 %.
//!
//! Concretely, for a value `v` in nanoseconds:
//!
//! * `v < 16` → bucket `v` (exact);
//! * otherwise, with `o = floor(log2 v)` and
//!   `sub = (v >> (o - 4)) & 15`, the bucket is `(o - 3) * 16 + sub`.
//!
//! This yields [`NUM_BUCKETS`] = 976 buckets covering the full `u64`
//! range with no configuration, so two histograms are always mergeable
//! by adding counts — there is exactly one bucketing scheme
//! (`hermes-latency-hist/v1`, the tag the JSON codec checks).
//!
//! Two types share the scheme: [`LatencyHistogram`] is the plain,
//! serializable aggregate embedded in a
//! [`RunReport`](crate::RunReport); [`LatencyRecorder`] is its
//! lock-free sibling that hot paths record into concurrently, folded
//! down with [`LatencyRecorder::snapshot`].

use crate::json::{JsonError, Value};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets of the fixed log-linear scheme (octaves 4..=63 of
/// 16 sub-buckets each, plus the 16 exact buckets below 16 ns).
pub const NUM_BUCKETS: usize = 16 + 60 * 16;

/// Sub-bucket resolution: values resolve to 4 significant bits, a
/// worst-case relative error of 6.25 %.
const SUB_BITS: u32 = 4;

/// Bucket index of a nanosecond value under the fixed scheme.
#[must_use]
pub fn bucket_index(ns: u64) -> usize {
    if ns < 16 {
        return ns as usize;
    }
    let octave = 63 - ns.leading_zeros();
    let sub = ((ns >> (octave - SUB_BITS)) & 0xF) as usize;
    (octave as usize - 3) * 16 + sub
}

/// Lowest nanosecond value mapping to `bucket` (the value reported for
/// every sample in the bucket; quantiles are thus under-estimates by at
/// most the 6.25 % bucket width).
///
/// # Panics
///
/// Panics if `bucket >= NUM_BUCKETS`.
#[must_use]
pub fn bucket_lower_bound(bucket: usize) -> u64 {
    assert!(bucket < NUM_BUCKETS, "bucket {bucket} out of range");
    if bucket < 16 {
        return bucket as u64;
    }
    let octave = (bucket / 16 + 3) as u32;
    let sub = (bucket % 16) as u64;
    (16 + sub) << (octave - SUB_BITS)
}

/// A plain log-bucketed latency histogram: the serializable aggregate
/// form (see the module docs for the bucketing scheme).
///
/// ```
/// use hermes_telemetry::LatencyHistogram;
/// let mut h = LatencyHistogram::new();
/// for ns in [100, 200, 300, 400, 50_000] {
///     h.record(ns);
/// }
/// assert_eq!(h.count(), 5);
/// assert!(h.p50().unwrap() >= 200 && h.p50().unwrap() <= 300);
/// assert!(h.p99().unwrap() >= 46_000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Scheme tag written into the JSON form; parsing rejects other
    /// schemes instead of silently mis-bucketing.
    pub const SCHEME: &'static str = "hermes-latency-hist/v1";

    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
        }
    }

    /// Record one sample of `ns` nanoseconds.
    pub fn record(&mut self, ns: u64) {
        self.counts[bucket_index(ns)] += 1;
        self.count += 1;
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no sample has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Add every bucket of `other` into `self` (the scheme is fixed, so
    /// any two histograms merge).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
    }

    /// The value at quantile `q` (0.0 ..= 1.0): the lower bound of the
    /// bucket holding the sample of rank `ceil(q × count)`. `None` when
    /// the histogram is empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `0.0 ..= 1.0`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_lower_bound(i));
            }
        }
        None // unreachable: seen ends at self.count >= rank
    }

    /// Median latency, ns.
    #[must_use]
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 99th-percentile latency, ns.
    #[must_use]
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// 99.9th-percentile latency, ns.
    #[must_use]
    pub fn p999(&self) -> Option<u64> {
        self.quantile(0.999)
    }

    /// Serialize as a JSON value: the scheme tag plus the non-zero
    /// buckets as `[index, count]` pairs (the 976-bucket array is
    /// almost entirely zeros).
    #[must_use]
    pub fn to_value(&self) -> Value {
        let buckets = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| Value::Arr(vec![Value::Num(i as f64), Value::Num(c as f64)]))
            .collect();
        Value::obj(vec![
            ("scheme", Value::Str(Self::SCHEME.to_string())),
            ("buckets", Value::Arr(buckets)),
        ])
    }

    /// Parse a histogram serialized by [`to_value`](Self::to_value).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on an unknown scheme tag, an out-of-range
    /// bucket index, or a malformed bucket list.
    pub fn from_value(v: &Value) -> Result<LatencyHistogram, JsonError> {
        let bad = |what: &str| JsonError {
            message: format!("invalid latency histogram: {what}"),
            offset: 0,
        };
        let scheme = v
            .get("scheme")
            .and_then(Value::as_str)
            .ok_or_else(|| bad("missing scheme"))?;
        if scheme != Self::SCHEME {
            return Err(bad(&format!("unsupported scheme '{scheme}'")));
        }
        let mut hist = LatencyHistogram::new();
        for pair in v
            .get("buckets")
            .and_then(Value::as_arr)
            .ok_or_else(|| bad("missing buckets"))?
        {
            let pair = pair.as_arr().ok_or_else(|| bad("bucket entry"))?;
            let (idx, count) = match pair {
                [i, c] => (
                    i.as_u64().ok_or_else(|| bad("bucket index"))? as usize,
                    c.as_u64().ok_or_else(|| bad("bucket count"))?,
                ),
                _ => return Err(bad("bucket entry shape")),
            };
            if idx >= NUM_BUCKETS {
                return Err(bad(&format!("bucket index {idx} out of range")));
            }
            hist.counts[idx] += count;
            hist.count += count;
        }
        Ok(hist)
    }
}

/// Lock-free concurrent recorder over the same bucketing scheme:
/// workers `record` into it from completion paths; hosts fold it down
/// with [`snapshot`](Self::snapshot) when building a report.
pub struct LatencyRecorder {
    counts: Box<[AtomicU64]>,
}

impl Default for LatencyRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyRecorder {
    /// An empty recorder.
    #[must_use]
    pub fn new() -> Self {
        LatencyRecorder {
            counts: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Record one sample of `ns` nanoseconds (any thread; one relaxed
    /// `fetch_add`).
    pub fn record(&self, ns: u64) {
        self.counts[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Fold the current counts into a plain [`LatencyHistogram`].
    #[must_use]
    pub fn snapshot(&self) -> LatencyHistogram {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let count = counts.iter().sum();
        LatencyHistogram { counts, count }
    }
}

impl std::fmt::Debug for LatencyRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyRecorder")
            .field("count", &self.count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..16 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower_bound(v as usize), v);
        }
    }

    #[test]
    fn bucket_bounds_are_monotone_and_self_consistent() {
        let mut prev = None;
        for b in 0..NUM_BUCKETS {
            let lo = bucket_lower_bound(b);
            if let Some(p) = prev {
                assert!(lo > p, "bounds must strictly increase at {b}");
            }
            prev = Some(lo);
            // The lower bound of a bucket lands in that bucket.
            assert_eq!(bucket_index(lo), b, "lower bound of {b} maps back");
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [
            17u64,
            100,
            999,
            12_345,
            1_000_000,
            987_654_321,
            u64::MAX / 3,
            u64::MAX,
        ] {
            let lo = bucket_lower_bound(bucket_index(v));
            assert!(lo <= v);
            let err = (v - lo) as f64 / v as f64;
            assert!(err <= 1.0 / 16.0 + 1e-12, "{v}: error {err}");
        }
    }

    #[test]
    fn quantiles_walk_the_distribution() {
        let mut h = LatencyHistogram::new();
        // 99 samples at ~1 µs, one at ~1 ms.
        for _ in 0..99 {
            h.record(1_000);
        }
        h.record(1_000_000);
        assert_eq!(h.count(), 100);
        let p50 = h.p50().unwrap();
        assert!((960..=1_000).contains(&p50), "p50 {p50}");
        let p99 = h.p99().unwrap();
        assert!(p99 <= 1_000, "rank 99 is still the 1 µs mass: {p99}");
        let p999 = h.p999().unwrap();
        assert!(p999 >= 900_000, "rank 100 is the outlier: {p999}");
        assert!(h.quantile(0.0).unwrap() <= p50);
        assert_eq!(h.quantile(1.0), h.p999());
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.p50(), None);
        assert_eq!(h.p99(), None);
        assert_eq!(h.p999(), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_quantile_panics() {
        let _ = LatencyHistogram::new().quantile(1.5);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for ns in [10, 100, 1_000] {
            a.record(ns);
        }
        for ns in [10, 10_000] {
            b.record(ns);
        }
        a.merge(&b);
        assert_eq!(a.count(), 5);
        let mut c = LatencyHistogram::new();
        for ns in [10, 100, 1_000, 10, 10_000] {
            c.record(ns);
        }
        assert_eq!(a, c, "merge == recording the union");
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let mut h = LatencyHistogram::new();
        for ns in [0, 5, 16, 31, 100, 40_000, 1_000_000_000, u64::MAX] {
            h.record(ns);
        }
        let parsed = LatencyHistogram::from_value(&h.to_value()).unwrap();
        assert_eq!(parsed, h);
        // Empty stays empty.
        let empty = LatencyHistogram::new();
        let parsed = LatencyHistogram::from_value(&empty.to_value()).unwrap();
        assert!(parsed.is_empty());
    }

    #[test]
    fn json_rejects_foreign_schemes_and_bad_buckets() {
        let mut h = LatencyHistogram::new();
        h.record(100);
        let Value::Obj(mut pairs) = h.to_value() else {
            panic!("histograms serialize as objects");
        };
        pairs[0].1 = Value::Str("someone-elses-hist/v7".to_string());
        assert!(LatencyHistogram::from_value(&Value::Obj(pairs)).is_err());
        let bad = Value::obj(vec![
            ("scheme", Value::Str(LatencyHistogram::SCHEME.to_string())),
            (
                "buckets",
                Value::Arr(vec![Value::Arr(vec![
                    Value::Num(NUM_BUCKETS as f64),
                    Value::Num(1.0),
                ])]),
            ),
        ]);
        assert!(LatencyHistogram::from_value(&bad).is_err());
    }

    #[test]
    fn recorder_snapshot_matches_plain_recording() {
        let rec = LatencyRecorder::new();
        let mut plain = LatencyHistogram::new();
        for ns in [1u64, 20, 300, 4_000, 50_000, 50_000] {
            rec.record(ns);
            plain.record(ns);
        }
        assert_eq!(rec.count(), 6);
        assert_eq!(rec.snapshot(), plain);
    }

    #[test]
    fn recorder_is_concurrent() {
        use std::sync::Arc;
        let rec = Arc::new(LatencyRecorder::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let rec = Arc::clone(&rec);
                std::thread::spawn(move || {
                    for i in 0..1_000u64 {
                        rec.record(t * 1_000 + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rec.snapshot().count(), 4_000);
    }
}
