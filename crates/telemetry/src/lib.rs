//! # hermes-telemetry
//!
//! The unified event-trace and baseline-artifact subsystem of the HERMES
//! reproduction. Every execution layer — the `hermes-core` tempo
//! controller, the `hermes-rt` thread pool, and the `hermes-sim`
//! discrete-event engine — emits the same event kinds
//! ([`Event`]: steal attempts with per-victim outcomes, tempo
//! transitions, DVFS actuations, energy samples, worker park/unpark
//! brackets, and per-request serving latencies) into a
//! [`TelemetrySink`], so simulated and real runs produce
//! **schema-identical** [`RunReport`]s that can be diffed against each
//! other and against persisted baselines.
//!
//! Three layers:
//!
//! * **Recording** — [`EventRing`]: fixed-capacity, lock-free,
//!   wait-free-per-record rings (one per worker plus a machine stream),
//!   wrapped by [`RingSink`], which also maintains exact monotone
//!   tallies so bounded rings never distort totals. [`NullSink`] is the
//!   do-nothing default.
//! * **Aggregation** — [`RunReport`]: per-worker counters with the
//!   steal-outcome split (success / empty / lost-race), the
//!   tempo-transition mix, a thief×victim steal matrix, and energy/time
//!   summaries.
//! * **Persistence** — a dependency-free JSON codec ([`json`]) backing
//!   `RunReport::to_json`/`from_json` and the bench harness's
//!   `BENCH_baseline.json` artifact.
//!
//! ```
//! use hermes_telemetry::{Event, RingSink, RunReport, StealOutcome, TelemetrySink};
//!
//! let sink = RingSink::new(2);
//! sink.record(1, 42, Event::StealAttempt { victim: 0, outcome: StealOutcome::Success });
//! let report = sink.report("quickstart", "doc", 0.001, 0.0);
//! let parsed = RunReport::from_json(&report.to_json()).unwrap();
//! assert_eq!(parsed.steal_matrix[1][0], 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod event;
pub mod json;
mod latency;
mod metrics;
mod report;
mod ring;
mod sink;

pub use event::{Event, PowerKind, SpanPhase, StealOutcome, WakeReason};
pub use latency::{
    bucket_index, bucket_lower_bound, LatencyHistogram, LatencyRecorder, NUM_BUCKETS,
};
pub use metrics::{MetricsHub, MetricsSnapshot, WorkerMetricsSample};
pub use report::{RunReport, TransitionMix, WorkerTelemetry};
pub use ring::{EventRing, DEFAULT_RING_CAPACITY};
pub use sink::{NullSink, RingSink, TelemetrySink, MACHINE_STREAM};

// Re-exported so hosts can convert controller trace records into events
// without a separate hermes-core import at the call site.
pub use hermes_core::{TransitionKind, TransitionRecord};
