//! Shared implementations of the paper's figure families, reused by the
//! per-figure bench targets.

use crate::{
    energy_saving_pct, figure_header, measure, normalized_edp, time_loss_pct, Cell, Summary, System,
};
use hermes_core::Policy;
use hermes_sim::Mapping;
use hermes_topology::VictimPolicy;
use hermes_workloads::Benchmark;

/// Figs. 6/7: overall energy savings (blue) and time loss (red) of the
/// unified algorithm versus the unmodified baseline, per benchmark and
/// worker count. Returns `(bench, workers, saving, loss)` rows.
pub fn overall(id: &str, system: System) -> Vec<(Benchmark, usize, f64, f64)> {
    overall_victim(id, system, VictimPolicy::UniformRandom)
}

/// [`overall`] with an explicit victim-selection policy (the victim
/// ablation reruns the figure family under each policy).
pub fn overall_victim(
    id: &str,
    system: System,
    victim: VictimPolicy,
) -> Vec<(Benchmark, usize, f64, f64)> {
    figure_header(
        id,
        "Normalized Energy Savings and Time Loss of HERMES w.r.t. baseline",
        Some(system),
    );
    println!("victim selection: {victim}");
    println!(
        "{:<9} {:>7} {:>14} {:>12}",
        "bench", "workers", "energy-saving", "time-loss"
    );
    let mut rows = Vec::new();
    let mut sum_saving = 0.0;
    let mut sum_loss = 0.0;
    for bench in Benchmark::all() {
        for &workers in system.worker_counts() {
            let base =
                measure(&Cell::new(bench, system, workers, Policy::Baseline).with_victim(victim));
            let hermes =
                measure(&Cell::new(bench, system, workers, Policy::Unified).with_victim(victim));
            let saving = energy_saving_pct(&base, &hermes);
            let loss = time_loss_pct(&base, &hermes);
            println!(
                "{:<9} {:>7} {:>13.1}% {:>11.1}%",
                bench.label(),
                workers,
                saving,
                loss
            );
            sum_saving += saving;
            sum_loss += loss;
            rows.push((bench, workers, saving, loss));
        }
    }
    let n = rows.len() as f64;
    println!(
        "{:<9} {:>7} {:>13.1}% {:>11.1}%  <- paper: ~11-12% / ~3-4%",
        "average",
        "-",
        sum_saving / n,
        sum_loss / n
    );
    rows
}

/// Figs. 8/9: normalized EDP per benchmark and worker count.
pub fn edp(id: &str, system: System) -> Vec<(Benchmark, usize, f64)> {
    edp_victim(id, system, VictimPolicy::UniformRandom)
}

/// [`edp`] with an explicit victim-selection policy.
pub fn edp_victim(id: &str, system: System, victim: VictimPolicy) -> Vec<(Benchmark, usize, f64)> {
    figure_header(
        id,
        "Normalized Energy-Delay Product (HERMES / baseline)",
        Some(system),
    );
    println!("victim selection: {victim}");
    println!("{:<9} {:>7} {:>10}", "bench", "workers", "norm-EDP");
    let mut rows = Vec::new();
    let mut sum = 0.0;
    for bench in Benchmark::all() {
        for &workers in system.worker_counts() {
            let base =
                measure(&Cell::new(bench, system, workers, Policy::Baseline).with_victim(victim));
            let hermes =
                measure(&Cell::new(bench, system, workers, Policy::Unified).with_victim(victim));
            let e = normalized_edp(&base, &hermes);
            println!("{:<9} {:>7} {:>10.3}", bench.label(), workers, e);
            sum += e;
            rows.push((bench, workers, e));
        }
    }
    println!(
        "{:<9} {:>7} {:>10.3}  <- paper: ~0.92 average, < 1 without exception",
        "average",
        "-",
        sum / rows.len() as f64
    );
    rows
}

/// Figs. 10–13: contribution of each strategy alone, normalized to the
/// unified algorithm (energy: fraction of unified savings; time: multiple
/// of unified loss). Returns `(bench, workers, workpath_rel, workload_rel)`.
pub fn strategy_relative(
    id: &str,
    system: System,
    energy: bool,
) -> Vec<(Benchmark, usize, f64, f64)> {
    let what = if energy { "Energy" } else { "Time" };
    figure_header(
        id,
        &format!("{what}: Workpath-only vs Workload-only, normalized to unified"),
        Some(system),
    );
    println!(
        "{:<9} {:>7} {:>14} {:>14}",
        "bench", "workers", "workpath/unif", "workload/unif"
    );
    let mut rows = Vec::new();
    for bench in Benchmark::all() {
        for &workers in system.worker_counts() {
            let base = measure(&Cell::new(bench, system, workers, Policy::Baseline));
            let unified = measure(&Cell::new(bench, system, workers, Policy::Unified));
            let rel = |policy: Policy| -> f64 {
                let alone = measure(&Cell::new(bench, system, workers, policy));
                if energy {
                    let u = energy_saving_pct(&base, &unified);
                    if u.abs() < 1e-9 {
                        return 0.0;
                    }
                    energy_saving_pct(&base, &alone) / u
                } else {
                    let u = time_loss_pct(&base, &unified);
                    if u.abs() < 1e-9 {
                        return 0.0;
                    }
                    time_loss_pct(&base, &alone) / u
                }
            };
            let wp = rel(Policy::WorkpathOnly);
            let wl = rel(Policy::WorkloadOnly);
            println!(
                "{:<9} {:>7} {:>14.2} {:>14.2}",
                bench.label(),
                workers,
                wp,
                wl
            );
            rows.push((bench, workers, wp, wl));
        }
    }
    if energy {
        println!("(paper: each strategy alone contributes roughly half the unified savings)");
    } else {
        println!("(paper: each strategy alone costs MORE time than unified, ratios > 1)");
    }
    rows
}

/// Figs. 14/15: the effect of the slow-frequency choice under
/// 2-frequency control. `pairs` lists (fast, slow) in MHz, in the
/// paper's column order. Returns `(bench, pair, saving, loss)`.
pub fn freq_selection(
    id: &str,
    system: System,
    pairs: &[(u64, u64)],
) -> Vec<(Benchmark, (u64, u64), f64, f64)> {
    figure_header(
        id,
        "The Effect of Frequency Selection (2-frequency tempo control)",
        Some(system),
    );
    let workers = *system.worker_counts().last().expect("non-empty");
    println!("workers = {workers}");
    println!(
        "{:<9} {:>12} {:>14} {:>12}",
        "bench", "pair(GHz)", "energy-saving", "time-loss"
    );
    let mut rows = Vec::new();
    for bench in Benchmark::all() {
        let base = measure(&Cell::new(bench, system, workers, Policy::Baseline));
        for &(fast, slow) in pairs {
            let cell = Cell::new(bench, system, workers, Policy::Unified).with_freqs(&[fast, slow]);
            let hermes = measure(&cell);
            let saving = energy_saving_pct(&base, &hermes);
            let loss = time_loss_pct(&base, &hermes);
            println!(
                "{:<9} {:>5.1}/{:<6.1} {:>13.1}% {:>11.1}%",
                bench.label(),
                fast as f64 / 1000.0,
                slow as f64 / 1000.0,
                saving,
                loss
            );
            rows.push((bench, (fast, slow), saving, loss));
        }
    }
    println!("(paper: lower slow frequency -> more savings but disproportionate loss;");
    println!(" the golden-ratio pair slow ~= 0.6-0.7x fast behaves best overall)");
    rows
}

/// Figs. 16/17: 2-frequency vs 3-frequency tempo control. `combos` lists
/// frequency ladders in MHz. Returns `(bench, combo index, saving, loss)`.
pub fn nfreq(id: &str, system: System, combos: &[&[u64]]) -> Vec<(Benchmark, usize, f64, f64)> {
    figure_header(id, "N-Frequency Tempo Control", Some(system));
    let workers = *system.worker_counts().last().expect("non-empty");
    println!("workers = {workers}");
    println!(
        "{:<9} {:>18} {:>14} {:>12}",
        "bench", "frequencies(GHz)", "energy-saving", "time-loss"
    );
    let mut rows = Vec::new();
    for bench in Benchmark::all() {
        let base = measure(&Cell::new(bench, system, workers, Policy::Baseline));
        for (i, combo) in combos.iter().enumerate() {
            let cell = Cell::new(bench, system, workers, Policy::Unified).with_freqs(combo);
            let hermes = measure(&cell);
            let saving = energy_saving_pct(&base, &hermes);
            let loss = time_loss_pct(&base, &hermes);
            let label = combo
                .iter()
                .map(|m| format!("{:.1}", *m as f64 / 1000.0))
                .collect::<Vec<_>>()
                .join("/");
            println!(
                "{:<9} {:>18} {:>13.1}% {:>11.1}%",
                bench.label(),
                label,
                saving,
                loss
            );
            rows.push((bench, i, saving, loss));
        }
    }
    println!("(paper: 3-frequency control can shave time loss; 2-frequency has a");
    println!(" slight edge on energy from fewer DVFS transitions)");
    rows
}

/// Fig. 18: static vs dynamic worker-core mapping. Returns
/// `(bench, mapping label, saving, loss)`.
pub fn scheduling(id: &str, system: System) -> Vec<(Benchmark, &'static str, f64, f64)> {
    figure_header(id, "Static vs Dynamic Scheduling", Some(system));
    let workers = *system.worker_counts().last().expect("non-empty");
    println!("workers = {workers}");
    println!(
        "{:<9} {:>8} {:>14} {:>12}",
        "bench", "mapping", "energy-saving", "time-loss"
    );
    let mut rows = Vec::new();
    for bench in Benchmark::all() {
        for mapping in [Mapping::Static, Mapping::dynamic_default()] {
            let base =
                measure(&Cell::new(bench, system, workers, Policy::Baseline).with_mapping(mapping));
            let hermes =
                measure(&Cell::new(bench, system, workers, Policy::Unified).with_mapping(mapping));
            let saving = energy_saving_pct(&base, &hermes);
            let loss = time_loss_pct(&base, &hermes);
            println!(
                "{:<9} {:>8} {:>13.1}% {:>11.1}%",
                bench.label(),
                mapping.label(),
                saving,
                loss
            );
            rows.push((bench, mapping.label(), saving, loss));
        }
    }
    println!("(paper: dynamic scheduling costs slightly more energy — per-WORK affinity)");
    rows
}

/// Summaries for one benchmark under baseline and unified, used by tests.
pub fn headline(system: System, bench: Benchmark, workers: usize) -> (Summary, Summary) {
    let base = measure(&Cell::new(bench, system, workers, Policy::Baseline));
    let hermes = measure(&Cell::new(bench, system, workers, Policy::Unified));
    (base, hermes)
}
