//! `sweep`: run the paper's figure matrix, persist the results as a
//! machine-readable baseline artifact, and diff artifacts against each
//! other within tolerances.
//!
//! ```text
//! sweep [--smoke] [--out PATH]        record an artifact (default BENCH_baseline.json)
//! sweep --diff BASE NEW [tolerances]  compare two artifacts; non-zero exit on drift
//!
//! Tolerances (percentage points unless noted):
//!   --tol-headline PTS   headline energy/time drift        (default 1.0)
//!   --tol-headline-edp X headline normalized-EDP drift     (default 0.02)
//!   --tol-row PTS        per-row energy/time drift         (default 5.0)
//!   --tol-row-edp X      per-row normalized-EDP drift      (default 0.10)
//! ```
//!
//! `--smoke` pins `HERMES_TRIALS=3` / `HERMES_SCALE=0.05` and runs the
//! System B overall + EDP figures only, so the run is deterministic,
//! CI-sized, and directly diffable against the committed
//! `BENCH_baseline.json`. Without `--smoke` the full fig06–fig18 matrix
//! runs at the ambient trial count and scale (long — tens of minutes).
//! Diffing across modes compares the figure rows both artifacts share;
//! the headline gate only applies between artifacts of the same mode
//! (smoke and full headlines average different figure families).
//!
//! The artifact also embeds one telemetry [`RunReport`] from a
//! sink-instrumented simulator run, so the baseline pins the report
//! schema alongside the headline numbers.

use hermes_bench::figures;
use hermes_bench::{Cell, System};
use hermes_core::Policy;
use hermes_telemetry::json::Value;
use hermes_telemetry::{RingSink, RunReport, TelemetrySink};
use hermes_workloads::Benchmark;
use std::process::ExitCode;
use std::sync::Arc;

const ARTIFACT_SCHEMA: &str = "hermes-bench-baseline/v1";
/// Default outputs differ by mode so a full run cannot silently clobber
/// the committed smoke baseline.
const DEFAULT_SMOKE_OUT: &str = "BENCH_baseline.json";
const DEFAULT_FULL_OUT: &str = "BENCH_full.json";

/// Flags that take a value (the next argument).
const VALUE_FLAGS: &[&str] = &[
    "--out",
    "--tol-headline",
    "--tol-headline-edp",
    "--tol-row",
    "--tol-row-edp",
    "--tol-row-ratio",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return ExitCode::SUCCESS;
    }
    // Strict argument validation: a typo like `--smokey` must error,
    // not silently fall through to the tens-of-minutes full sweep.
    let mut positionals = 0;
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a == "--smoke" || a == "--diff" {
            i += 1;
        } else if VALUE_FLAGS.contains(&a.as_str()) {
            if args.get(i + 1).is_none_or(|v| v.starts_with("--")) {
                eprintln!("sweep: flag {a} needs a value");
                print_usage();
                return ExitCode::from(2);
            }
            i += 2;
        } else if a.starts_with('-') {
            eprintln!("sweep: unknown flag {a}");
            print_usage();
            return ExitCode::from(2);
        } else {
            positionals += 1;
            i += 1;
        }
    }
    if args.iter().any(|a| a == "--diff") {
        if positionals != 2 {
            eprintln!("sweep: --diff needs exactly two artifact paths");
            print_usage();
            return ExitCode::from(2);
        }
        return diff_main(&args);
    }
    if positionals != 0 {
        eprintln!("sweep: unexpected positional arguments");
        print_usage();
        return ExitCode::from(2);
    }
    record_main(&args)
}

fn print_usage() {
    eprintln!("usage: sweep [--smoke] [--out PATH]");
    eprintln!("       sweep --diff BASE NEW [--tol-headline PTS] [--tol-headline-edp X]");
    eprintln!("                             [--tol-row PTS] [--tol-row-edp X] [--tol-row-ratio X]");
    eprintln!("default output: {DEFAULT_SMOKE_OUT} with --smoke, {DEFAULT_FULL_OUT} without");
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Parse a tolerance flag; an unparsable or negative value is a hard
/// error — silently falling back to the default would let a CI config
/// that thinks it tightened a gate run at the loose default.
fn tolerance(args: &[String], flag: &str, default: f64) -> Result<f64, String> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(v) => v
            .parse::<f64>()
            .ok()
            .filter(|&t| t >= 0.0 && t.is_finite())
            .ok_or_else(|| format!("{flag} expects a non-negative number, got '{v}'")),
    }
}

// ---------------------------------------------------------------------
// Recording

fn record_main(args: &[String]) -> ExitCode {
    let smoke = args.iter().any(|a| a == "--smoke");
    let default_out = if smoke { DEFAULT_SMOKE_OUT } else { DEFAULT_FULL_OUT };
    let out_path = flag_value(args, "--out").unwrap_or_else(|| default_out.to_string());
    if smoke {
        // Pin the protocol so smoke artifacts are comparable across
        // machines and CI runs: the simulator is deterministic, so the
        // same trials × scale reproduce bit-identical figures.
        std::env::set_var("HERMES_TRIALS", "3");
        std::env::set_var("HERMES_SCALE", "0.05");
    }
    let artifact = record(smoke);
    let json = artifact.to_string_pretty();
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("sweep: cannot write {out_path}: {e}");
        return ExitCode::from(2);
    }
    println!("\nsweep: wrote {out_path} ({} bytes)", json.len());
    ExitCode::SUCCESS
}

/// One figure row: a stable key plus named metric fields.
fn row(key: String, fields: Vec<(&str, f64)>) -> Value {
    let mut pairs = vec![("key", Value::Str(key))];
    pairs.extend(fields.into_iter().map(|(k, v)| (k, Value::Num(v))));
    Value::obj(pairs)
}

fn overall_rows(rows: Vec<(Benchmark, usize, f64, f64)>) -> Value {
    Value::Arr(
        rows.into_iter()
            .map(|(bench, workers, saving, loss)| {
                row(
                    format!("{}/w{workers}", bench.label()),
                    vec![("energy_saving_pct", saving), ("time_loss_pct", loss)],
                )
            })
            .collect(),
    )
}

fn edp_rows(rows: Vec<(Benchmark, usize, f64)>) -> Value {
    Value::Arr(
        rows.into_iter()
            .map(|(bench, workers, edp)| {
                row(format!("{}/w{workers}", bench.label()), vec![("norm_edp", edp)])
            })
            .collect(),
    )
}

fn saving_loss_rows<K: std::fmt::Display>(
    rows: Vec<(Benchmark, K, f64, f64)>,
) -> Value {
    Value::Arr(
        rows.into_iter()
            .map(|(bench, k, saving, loss)| {
                row(
                    format!("{}/{k}", bench.label()),
                    vec![("energy_saving_pct", saving), ("time_loss_pct", loss)],
                )
            })
            .collect(),
    )
}

fn strategy_rows(rows: Vec<(Benchmark, usize, f64, f64)>) -> Value {
    Value::Arr(
        rows.into_iter()
            .map(|(bench, workers, wp, wl)| {
                row(
                    format!("{}/w{workers}", bench.label()),
                    vec![("workpath_rel", wp), ("workload_rel", wl)],
                )
            })
            .collect(),
    )
}

fn record(smoke: bool) -> Value {
    let mut figures_out: Vec<(String, Value)> = Vec::new();
    // Headline accumulators over the overall (fig06/07) and EDP
    // (fig08/09) families.
    let mut saving_sum = 0.0;
    let mut loss_sum = 0.0;
    let mut overall_n = 0.0;
    let mut edp_sum = 0.0;
    let mut edp_n = 0.0;

    let run_overall = |id: &str, name: &str, system: System,
                           figures_out: &mut Vec<(String, Value)>,
                           saving_sum: &mut f64,
                           loss_sum: &mut f64,
                           overall_n: &mut f64| {
        let rows = figures::overall(id, system);
        for &(_, _, saving, loss) in &rows {
            *saving_sum += saving;
            *loss_sum += loss;
            *overall_n += 1.0;
        }
        figures_out.push((name.to_string(), overall_rows(rows)));
    };
    let run_edp = |id: &str, name: &str, system: System,
                       figures_out: &mut Vec<(String, Value)>,
                       edp_sum: &mut f64,
                       edp_n: &mut f64| {
        let rows = figures::edp(id, system);
        for &(_, _, e) in &rows {
            *edp_sum += e;
            *edp_n += 1.0;
        }
        figures_out.push((name.to_string(), edp_rows(rows)));
    };

    if !smoke {
        run_overall(
            "Figure 6", "fig06_overall_a", System::A, &mut figures_out,
            &mut saving_sum, &mut loss_sum, &mut overall_n,
        );
    }
    run_overall(
        "Figure 7", "fig07_overall_b", System::B, &mut figures_out,
        &mut saving_sum, &mut loss_sum, &mut overall_n,
    );
    if !smoke {
        run_edp("Figure 8", "fig08_edp_a", System::A, &mut figures_out, &mut edp_sum, &mut edp_n);
    }
    run_edp("Figure 9", "fig09_edp_b", System::B, &mut figures_out, &mut edp_sum, &mut edp_n);

    if !smoke {
        figures_out.push((
            "fig10_strategy_energy_a".to_string(),
            strategy_rows(figures::strategy_relative("Figure 10", System::A, true)),
        ));
        figures_out.push((
            "fig11_strategy_time_a".to_string(),
            strategy_rows(figures::strategy_relative("Figure 11", System::A, false)),
        ));
        figures_out.push((
            "fig12_strategy_energy_b".to_string(),
            strategy_rows(figures::strategy_relative("Figure 12", System::B, true)),
        ));
        figures_out.push((
            "fig13_strategy_time_b".to_string(),
            strategy_rows(figures::strategy_relative("Figure 13", System::B, false)),
        ));
        let fs_a = figures::freq_selection(
            "Figure 14",
            System::A,
            &[(2400, 1600), (2400, 1400), (2400, 1900)],
        );
        figures_out.push((
            "fig14_freq_selection_a".to_string(),
            saving_loss_rows(
                fs_a.into_iter()
                    .map(|(b, (f, s), sv, ls)| (b, format!("{f}-{s}"), sv, ls))
                    .collect(),
            ),
        ));
        let fs_b = figures::freq_selection(
            "Figure 15",
            System::B,
            &[(3600, 2700), (3600, 2100), (3600, 3300)],
        );
        figures_out.push((
            "fig15_freq_selection_b".to_string(),
            saving_loss_rows(
                fs_b.into_iter()
                    .map(|(b, (f, s), sv, ls)| (b, format!("{f}-{s}"), sv, ls))
                    .collect(),
            ),
        ));
        let nf_a = figures::nfreq(
            "Figure 16",
            System::A,
            &[&[2400, 1600], &[2400, 1600, 1400], &[2400, 1900, 1600]],
        );
        figures_out.push((
            "fig16_nfreq_a".to_string(),
            saving_loss_rows(
                nf_a.into_iter()
                    .map(|(b, i, sv, ls)| (b, format!("combo{i}"), sv, ls))
                    .collect(),
            ),
        ));
        let nf_b = figures::nfreq(
            "Figure 17",
            System::B,
            &[&[3600, 2700], &[3600, 3300, 2700]],
        );
        figures_out.push((
            "fig17_nfreq_b".to_string(),
            saving_loss_rows(
                nf_b.into_iter()
                    .map(|(b, i, sv, ls)| (b, format!("combo{i}"), sv, ls))
                    .collect(),
            ),
        ));
        figures_out.push((
            "fig18_scheduling".to_string(),
            saving_loss_rows(
                figures::scheduling("Figure 18", System::B)
                    .into_iter()
                    .map(|(b, m, sv, ls)| (b, m.to_string(), sv, ls))
                    .collect(),
            ),
        ));
    }

    let headline = Value::obj(vec![
        ("energy_saving_pct", Value::Num(saving_sum / overall_n.max(1.0))),
        ("time_loss_pct", Value::Num(loss_sum / overall_n.max(1.0))),
        ("norm_edp", Value::Num(edp_sum / edp_n.max(1.0))),
    ]);
    println!(
        "\nheadline: energy saving {:.2}% | time loss {:.2}% | norm EDP {:.3}",
        saving_sum / overall_n.max(1.0),
        loss_sum / overall_n.max(1.0),
        edp_sum / edp_n.max(1.0),
    );

    Value::obj(vec![
        ("schema", Value::Str(ARTIFACT_SCHEMA.to_string())),
        ("mode", Value::Str(if smoke { "smoke" } else { "full" }.to_string())),
        ("trials", Value::Num(hermes_bench::trials() as f64)),
        ("scale", Value::Num(hermes_bench::scale())),
        ("headline", headline),
        ("figures", Value::Obj(figures_out.into_iter().collect())),
        ("sample_run_report", sample_run_report().to_value()),
    ])
}

/// One telemetry-instrumented simulator run, embedded so the baseline
/// pins the RunReport schema next to the figures (and exercises the sink
/// wiring end to end on every sweep).
fn sample_run_report() -> RunReport {
    let cell = Cell::new(Benchmark::Sort, System::B, 4, Policy::Unified);
    let sink = Arc::new(RingSink::new(cell.workers));
    let dag = cell.bench.dag_scaled(0, hermes_bench::scale());
    let tempo = hermes_core::TempoConfig::builder()
        .policy(cell.policy)
        .frequencies(cell.freqs.clone())
        .workers(cell.workers)
        .threshold_scale(hermes_bench::threshold_scale(cell.system))
        .build();
    let config = hermes_sim::SimConfig::new(cell.system.machine(), tempo)
        .with_telemetry(Arc::clone(&sink) as Arc<dyn TelemetrySink>);
    let report = hermes_sim::run(&dag, &config).expect("harness presets are consistent");
    sink.report(
        "sort/B/w4/unified",
        "sim",
        report.elapsed.seconds(),
        report.energy_j,
    )
}

// ---------------------------------------------------------------------
// Diffing

struct Tolerances {
    headline_pct: f64,
    headline_edp: f64,
    row_pct: f64,
    row_edp: f64,
    row_ratio: f64,
}

fn diff_main(args: &[String]) -> ExitCode {
    // The two positionals after flag filtering are BASE and NEW (main
    // already validated the count); accept them in order.
    let mut paths = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if VALUE_FLAGS.contains(&a.as_str()) {
            i += 2;
        } else if a.starts_with('-') {
            i += 1;
        } else {
            paths.push(a.clone());
            i += 1;
        }
    }
    let (base_path, new_path) = (&paths[0], &paths[1]);
    let tol = match (|| -> Result<Tolerances, String> {
        Ok(Tolerances {
            headline_pct: tolerance(args, "--tol-headline", 1.0)?,
            headline_edp: tolerance(args, "--tol-headline-edp", 0.02)?,
            row_pct: tolerance(args, "--tol-row", 5.0)?,
            row_edp: tolerance(args, "--tol-row-edp", 0.10)?,
            row_ratio: tolerance(args, "--tol-row-ratio", 0.25)?,
        })
    })() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("sweep: {e}");
            return ExitCode::from(2);
        }
    };
    let load = |path: &str| -> Result<Value, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let v = Value::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        match v.get("schema").and_then(Value::as_str) {
            Some(ARTIFACT_SCHEMA) => Ok(v),
            Some(other) => Err(format!("{path}: unsupported schema '{other}'")),
            None => Err(format!("{path}: missing schema tag")),
        }
    };
    let (base, new) = match (load(base_path), load(new_path)) {
        (Ok(b), Ok(n)) => (b, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("sweep: {e}");
            return ExitCode::from(2);
        }
    };
    match diff(&base, &new, &tol) {
        0 => {
            println!("sweep: {new_path} agrees with {base_path} within tolerances");
            ExitCode::SUCCESS
        }
        n => {
            eprintln!("sweep: {n} metric(s) drifted beyond tolerance");
            ExitCode::FAILURE
        }
    }
}

/// Tolerance for a metric field, by name. Percentage-point fields get
/// `--tol-row`; normalized quantities get scales of their own —
/// applying the 5-point row tolerance to a ~1.0-scale ratio would make
/// that gate vacuous.
fn field_tolerance(field: &str, tol: &Tolerances) -> f64 {
    match field {
        "norm_edp" => tol.row_edp,
        // Strategy contributions normalized to the unified policy
        // (~0.3–1.5): noisier than EDP (a ratio of two small
        // percentages), hence the wider default.
        "workpath_rel" | "workload_rel" => tol.row_ratio,
        _ => tol.row_pct,
    }
}

fn diff(base: &Value, new: &Value, tol: &Tolerances) -> usize {
    let mut violations = 0;

    // Headline: the gate CI cares about — but only between artifacts of
    // the same mode. A smoke headline averages the System B figures
    // while a full headline averages Systems A+B, so a cross-mode delta
    // is protocol difference, not drift; shared figure rows below are
    // still compared.
    let base_mode = base.get("mode").and_then(Value::as_str).unwrap_or("?");
    let new_mode = new.get("mode").and_then(Value::as_str).unwrap_or("?");
    let headline_gate: &[(&str, f64)] = if base_mode == new_mode {
        &[
            ("energy_saving_pct", tol.headline_pct),
            ("time_loss_pct", tol.headline_pct),
            ("norm_edp", tol.headline_edp),
        ]
    } else {
        println!(
            "headline gate skipped: artifact modes differ ({base_mode} vs {new_mode}); \
             comparing shared figure rows only"
        );
        &[]
    };
    println!("{:<34} {:>10} {:>10} {:>8} {:>8}", "metric", "base", "new", "drift", "tol");
    for &(field, t) in headline_gate {
        let b = base.get("headline").and_then(|h| h.get(field)).and_then(Value::as_f64);
        let n = new.get("headline").and_then(|h| h.get(field)).and_then(Value::as_f64);
        match (b, n) {
            (Some(b), Some(n)) => {
                let drift = (n - b).abs();
                let flag = if drift > t { " DRIFT" } else { "" };
                if drift > t {
                    violations += 1;
                }
                println!(
                    "{:<34} {:>10.3} {:>10.3} {:>8.3} {:>8.3}{flag}",
                    format!("headline.{field}"),
                    b,
                    n,
                    drift,
                    t
                );
            }
            _ => {
                violations += 1;
                println!("{:<34} missing on one side", format!("headline.{field}"));
            }
        }
    }

    // Per-row comparison over the figures present in BOTH artifacts
    // (a smoke artifact diffs cleanly against a full one).
    let (Some(Value::Obj(base_figs)), Some(Value::Obj(new_figs))) =
        (base.get("figures"), new.get("figures"))
    else {
        eprintln!("sweep: malformed figures section");
        return violations + 1;
    };
    let mut compared = 0;
    for (fig, base_rows) in base_figs {
        let Some(new_rows) = new_figs.iter().find(|(k, _)| k == fig).map(|(_, v)| v) else {
            continue;
        };
        let (Some(base_rows), Some(new_rows)) = (base_rows.as_arr(), new_rows.as_arr()) else {
            violations += 1;
            continue;
        };
        for brow in base_rows {
            let Some(key) = brow.get("key").and_then(Value::as_str) else {
                continue;
            };
            let Some(nrow) = new_rows
                .iter()
                .find(|r| r.get("key").and_then(Value::as_str) == Some(key))
            else {
                violations += 1;
                println!("{fig}/{key:<24} row missing in new artifact");
                continue;
            };
            if let Value::Obj(fields) = brow {
                for (field, bval) in fields {
                    if field == "key" {
                        continue;
                    }
                    let (Some(b), Some(n)) = (
                        bval.as_f64(),
                        nrow.get(field).and_then(Value::as_f64),
                    ) else {
                        violations += 1;
                        continue;
                    };
                    compared += 1;
                    let t = field_tolerance(field, tol);
                    let drift = (n - b).abs();
                    if drift > t {
                        violations += 1;
                        println!(
                            "{:<34} {:>10.3} {:>10.3} {:>8.3} {:>8.3} DRIFT",
                            format!("{fig}/{key}.{field}"),
                            b,
                            n,
                            drift,
                            t
                        );
                    }
                }
            }
        }
    }
    println!("compared {compared} row metrics; {violations} violation(s)");

    // The embedded RunReport must parse under the current schema — a
    // cheap guard against silently breaking the report format.
    for (side, artifact) in [("base", base), ("new", new)] {
        match artifact.get("sample_run_report") {
            Some(v) => {
                if let Err(e) = RunReport::from_value(v) {
                    violations += 1;
                    eprintln!("sweep: {side} sample_run_report invalid: {e}");
                }
            }
            None => {
                violations += 1;
                eprintln!("sweep: {side} artifact has no sample_run_report");
            }
        }
    }
    violations
}
