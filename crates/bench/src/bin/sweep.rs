//! `sweep`: run the paper's figure matrix, persist the results as a
//! machine-readable baseline artifact, diff artifacts against each
//! other within tolerances, and ablate the victim-selection policy.
//!
//! ```text
//! sweep --smoke [--out PATH]          record the smoke artifact (default BENCH_baseline.json)
//! sweep --full  [--out PATH]          record the full fig06-fig18 artifact (default BENCH_full.json)
//! sweep --diff BASE NEW [tolerances]  compare two artifacts; non-zero exit on drift
//! sweep --ablate-victim [--smoke] [--baseline PATH]
//!                                     run the three victim policies; non-zero exit when the
//!                                     locality gate or the baseline tolerances fail
//! sweep --ablate-deque [--smoke] [--baseline PATH] [--out PATH] [--min-steal-ratio X]
//!                                     THE vs. atomics-only deque: contended-steal throughput,
//!                                     empty/lost-race split, figure drift; non-zero exit when
//!                                     the lock-free deque loses or the figures drift
//! sweep --serve [--smoke] [--baseline PATH] [--out PATH]
//!               [--serve-p99-factor X] [--serve-p99-floor-ms MS]
//!               [--gate-energy-attr] [--energy-attr-tol X]
//!                                     energy-under-load ablation: utilization × tempo × parking
//!                                     over an open-loop Poisson-served grid; non-zero exit when
//!                                     tempo+parking fails to beat tempo-off/parking-off on
//!                                     energy at the lowest utilization, when its p99 exceeds
//!                                     tolerance, or when the arrival schedule diverges from
//!                                     the committed baseline. --gate-energy-attr additionally
//!                                     re-runs the lowest-utilization corners with a telemetry
//!                                     ring attached and fails unless the EnergyLedger closure
//!                                     (attributed + idle + unattributed vs. the meter) holds
//!                                     within --energy-attr-tol (default 0.02)
//! sweep --energy-trend OLD [...] NEW [--tol-energy-trend X]
//!                                     diff the energy headline across two or more committed
//!                                     artifacts (oldest first, all the same schema and mode):
//!                                     baseline artifacts compare headline.energy_saving_pct
//!                                     (points), serve artifacts the on/on÷off/off energy
//!                                     ratio; non-zero exit when any consecutive step regresses
//!                                     beyond tolerance
//!
//! Tolerances (percentage points unless noted):
//!   --tol-headline PTS   headline energy/time drift        (default 1.0)
//!   --tol-headline-edp X headline normalized-EDP drift     (default 0.02)
//!   --tol-row PTS        per-row energy/time drift         (default 5.0)
//!   --tol-row-edp X      per-row normalized-EDP drift      (default 0.10)
//! ```
//!
//! `--smoke` pins `HERMES_TRIALS=3` / `HERMES_SCALE=0.05` and runs the
//! System B overall + EDP figures only, so the run is deterministic,
//! CI-sized, and directly diffable against the committed
//! `BENCH_baseline.json`. `--full` runs the whole fig06–fig18 matrix at
//! the ambient trial count and scale (long — tens of minutes); its
//! protocol is documented in DESIGN.md next to the smoke protocol.
//! Diffing across modes compares the figure rows both artifacts share;
//! the headline gate only applies between artifacts of the same mode
//! (smoke and full headlines average different figure families).
//!
//! `--ablate-deque` compares the paper's THE deque against the
//! atomics-only Chase–Lev deque on the two axes where the deque can
//! matter: a raw contended-steal throughput probe (one owner, three
//! thieves hammering a single deque — the `micro`
//! `deque/contended_steal` scenario, measured rather than
//! criterion-sampled) and a telemetry-instrumented `hermes-rt` pool run
//! whose `RunReport` carries the `empty_steals`/`lost_race_steals`
//! split (contention vs. starvation; see DESIGN.md §Deque). The paper
//! figures come from the simulator, whose steal path is modelled, not
//! executed — so the figure family is recorded once and gated against
//! the committed baseline to pin down that the deque swap cannot move
//! energy/time/EDP. Exits non-zero unless (a) the atomics-only deque's
//! contended-steal throughput is at least `--min-steal-ratio` (default
//! 1.0) times THE's, and (b) with `--smoke`, the figure rows stay
//! within the standard `--diff` tolerances of the committed baseline.
//! The measurements land in `BENCH_deque_ablation.json` (override with
//! `--out`).
//!
//! `--serve` measures what no closed fork-join scenario can: the energy
//! a server burns *between* requests. A [`hermes_serve::Server`] on the
//! rt pool is driven open-loop with deterministic seeded Poisson
//! arrivals at 10/30/60/90 % offered utilization, across the four
//! {tempo on/off} × {parking on/off} corners (16 cells). Each cell
//! records emulated energy (busy + idle-spin + parked), the
//! log-bucketed latency percentiles (p50/p99/p999), and park counters.
//! Gates: at the lowest utilization, tempo+parking energy must be
//! strictly below tempo-off/parking-off while its p99 stays within
//! `--serve-p99-factor` × the off/off p99 plus `--serve-p99-floor-ms`;
//! and the per-utilization arrival-schedule fingerprints must match the
//! committed `BENCH_serve.json` (the deterministic, host-independent
//! part of the artifact). An *async corner* re-runs the lowest
//! utilization through [`Server::submit_async`] (four more cells, keys
//! suffixed `/async`) and applies the same energy and p99 gates there —
//! the energy claim must survive the request path switching from
//! run-once closures to refcounted polled futures. See DESIGN.md §Serve
//! and §Async for the protocol.
//!
//! `--ablate-victim` reruns the smoke figure family under each
//! `VictimPolicy` and probes steal locality with a dense-placement
//! telemetry run per system shape (dense, because under the paper's
//! distinct-domain placement no victim *can* share the thief's clock
//! domain). It exits non-zero unless (a) the distance-weighted policy
//! moves a strictly higher fraction of successful steals to same-domain
//! victims than uniform-random on the System A shape, and (b) every
//! policy's figure rows stay within the standard `--diff` tolerances of
//! the committed baseline.
//!
//! Recorded artifacts also embed one telemetry [`RunReport`] from a
//! sink-instrumented simulator run (now including the steal-distance
//! histogram), so the baseline pins the report schema alongside the
//! headline numbers.

use hermes_bench::figures;
use hermes_bench::{cell_config, trials, Cell, System};
use hermes_core::{Frequency, Policy, TempoConfig};
use hermes_deque::{LockFreeDeque, Steal, TaskDeque, TheDeque};
use hermes_obs::{EnergyLedger, SpanForest};
use hermes_rt::{parallel_for, DequeKind, Pool};
use hermes_serve::{
    run_open_loop, run_open_loop_async, run_open_loop_classed, ElasticConfig, PoissonSchedule,
    Priority, Server, SubmitOptions,
};
use hermes_sim::WorkerPlacement;
use hermes_telemetry::json::Value;
use hermes_telemetry::{RingSink, RunReport, TelemetrySink};
use hermes_topology::VictimPolicy;
use hermes_workloads::Benchmark;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

const ARTIFACT_SCHEMA: &str = "hermes-bench-baseline/v1";
/// Default outputs differ by mode so a full run cannot silently clobber
/// the committed smoke baseline.
const DEFAULT_SMOKE_OUT: &str = "BENCH_baseline.json";
const DEFAULT_FULL_OUT: &str = "BENCH_full.json";
/// Where `--ablate-deque` records its measurements.
const DEFAULT_DEQUE_OUT: &str = "BENCH_deque_ablation.json";
/// Schema tag of the deque-ablation artifact (not `--diff`-comparable
/// with the figure baselines: most of its numbers are wall-clock
/// measurements of this host, not deterministic simulator output).
const DEQUE_ARTIFACT_SCHEMA: &str = "hermes-deque-ablation/v1";
/// Where `--serve` records its measurements.
const DEFAULT_SERVE_OUT: &str = "BENCH_serve.json";
/// Schema tag of the serving ablation artifact. Like the deque
/// ablation, its energy/latency numbers are wall-clock measurements of
/// this host; the *deterministic* part — the seeded Poisson arrival
/// schedule, fingerprinted per utilization point — is what the
/// reproducibility gate compares against the committed baseline.
const SERVE_ARTIFACT_SCHEMA: &str = "hermes-serve-ablation/v1";

/// Flags that take a value (the next argument).
const VALUE_FLAGS: &[&str] = &[
    "--out",
    "--baseline",
    "--max-overhead",
    "--min-steal-ratio",
    "--serve-p99-factor",
    "--serve-p99-floor-ms",
    "--energy-attr-tol",
    "--tol-energy-trend",
    "--tol-headline",
    "--tol-headline-edp",
    "--tol-row",
    "--tol-row-edp",
    "--tol-row-ratio",
];

/// Flags that stand alone.
const MODE_FLAGS: &[&str] = &[
    "--smoke",
    "--full",
    "--diff",
    "--ablate-victim",
    "--ablate-deque",
    "--serve",
    "--serve-classes",
    "--serve-elastic",
    "--gate-overhead",
    "--gate-energy-attr",
    "--energy-trend",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return ExitCode::SUCCESS;
    }
    // Strict argument validation: a typo like `--smokey` must error,
    // not silently fall through to the tens-of-minutes full sweep.
    let mut positionals = 0;
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if MODE_FLAGS.contains(&a.as_str()) {
            i += 1;
        } else if VALUE_FLAGS.contains(&a.as_str()) {
            if args.get(i + 1).is_none_or(|v| v.starts_with("--")) {
                eprintln!("sweep: flag {a} needs a value");
                print_usage();
                return ExitCode::from(2);
            }
            i += 2;
        } else if a.starts_with('-') {
            eprintln!("sweep: unknown flag {a}");
            print_usage();
            return ExitCode::from(2);
        } else {
            positionals += 1;
            i += 1;
        }
    }
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let (smoke, full, diff, ablate, ablate_deque, serve, gate_overhead) = (
        has("--smoke"),
        has("--full"),
        has("--diff"),
        has("--ablate-victim"),
        has("--ablate-deque"),
        has("--serve"),
        has("--gate-overhead"),
    );
    let (gate_energy_attr, energy_trend) = (has("--gate-energy-attr"), has("--energy-trend"));
    if diff {
        if smoke || full || ablate || ablate_deque || serve || gate_overhead || energy_trend {
            eprintln!("sweep: --diff does not combine with recording modes");
            print_usage();
            return ExitCode::from(2);
        }
        if positionals != 2 {
            eprintln!("sweep: --diff needs exactly two artifact paths");
            print_usage();
            return ExitCode::from(2);
        }
        return diff_main(&args);
    }
    if energy_trend {
        if smoke || full || ablate || ablate_deque || serve || gate_overhead {
            eprintln!("sweep: --energy-trend does not combine with recording modes");
            print_usage();
            return ExitCode::from(2);
        }
        if positionals < 2 {
            eprintln!("sweep: --energy-trend needs two or more artifact paths, oldest first");
            print_usage();
            return ExitCode::from(2);
        }
        return energy_trend_main(&args);
    }
    if gate_energy_attr && !serve {
        eprintln!("sweep: --gate-energy-attr modifies --serve (it probes the serving grid)");
        print_usage();
        return ExitCode::from(2);
    }
    if has("--serve-classes") && !serve {
        eprintln!("sweep: --serve-classes modifies --serve (it adds the multi-tenant corner)");
        print_usage();
        return ExitCode::from(2);
    }
    if has("--serve-elastic") && !serve {
        eprintln!("sweep: --serve-elastic modifies --serve (it adds the burst/elastic grid)");
        print_usage();
        return ExitCode::from(2);
    }
    if positionals != 0 {
        eprintln!("sweep: unexpected positional arguments");
        print_usage();
        return ExitCode::from(2);
    }
    if [ablate, ablate_deque, serve].iter().filter(|&&m| m).count() > 1 {
        eprintln!("sweep: pick one ablation at a time");
        print_usage();
        return ExitCode::from(2);
    }
    if gate_overhead {
        if smoke || full || ablate || ablate_deque || serve {
            eprintln!("sweep: --gate-overhead runs alone (it times this host, not the simulator)");
            print_usage();
            return ExitCode::from(2);
        }
        return gate_overhead_main(&args);
    }
    if serve {
        if full {
            eprintln!("sweep: --serve runs its own protocol; combine with --smoke only");
            print_usage();
            return ExitCode::from(2);
        }
        return serve_main(&args, smoke);
    }
    if ablate || ablate_deque {
        if full {
            eprintln!("sweep: ablations run their own protocol; combine with --smoke only");
            print_usage();
            return ExitCode::from(2);
        }
        if smoke {
            pin_smoke_protocol();
        }
        return if ablate {
            ablate_main(&args, smoke)
        } else {
            ablate_deque_main(&args, smoke)
        };
    }
    // Recording requires an explicit mode: the full matrix runs for tens
    // of minutes, far too expensive to be a default nobody asked for.
    match (smoke, full) {
        (true, false) => {
            pin_smoke_protocol();
            record_main(&args, true)
        }
        (false, true) => record_main(&args, false),
        _ => {
            eprintln!("sweep: pick exactly one of --smoke or --full");
            print_usage();
            ExitCode::from(2)
        }
    }
}

/// Pin the smoke protocol so smoke artifacts are comparable across
/// machines and CI runs: the simulator is deterministic, so the same
/// trials × scale reproduce bit-identical figures.
fn pin_smoke_protocol() {
    std::env::set_var("HERMES_TRIALS", "3");
    std::env::set_var("HERMES_SCALE", "0.05");
}

fn print_usage() {
    eprintln!("usage: sweep --smoke [--out PATH]");
    eprintln!("       sweep --full  [--out PATH]");
    eprintln!("       sweep --diff BASE NEW [--tol-headline PTS] [--tol-headline-edp X]");
    eprintln!("                             [--tol-row PTS] [--tol-row-edp X] [--tol-row-ratio X]");
    eprintln!("       sweep --ablate-victim [--smoke] [--baseline PATH] [tolerances]");
    eprintln!("       sweep --ablate-deque  [--smoke] [--baseline PATH] [--out PATH]");
    eprintln!("                             [--min-steal-ratio X] [tolerances]");
    eprintln!("       sweep --serve [--smoke] [--baseline PATH] [--out PATH]");
    eprintln!("                     [--serve-classes] [--serve-elastic] [--serve-p99-factor X]");
    eprintln!("                     [--serve-p99-floor-ms MS]");
    eprintln!("                     [--gate-energy-attr] [--energy-attr-tol X]");
    eprintln!("       sweep --energy-trend OLD [...] NEW [--tol-energy-trend X]");
    eprintln!("       sweep --gate-overhead [--max-overhead RATIO]");
    eprintln!("default output: {DEFAULT_SMOKE_OUT} with --smoke, {DEFAULT_FULL_OUT} with --full,");
    eprintln!(
        "                {DEFAULT_DEQUE_OUT} with --ablate-deque, {DEFAULT_SERVE_OUT} with --serve"
    );
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Parse a tolerance flag; an unparsable or negative value is a hard
/// error — silently falling back to the default would let a CI config
/// that thinks it tightened a gate run at the loose default.
fn tolerance(args: &[String], flag: &str, default: f64) -> Result<f64, String> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(v) => v
            .parse::<f64>()
            .ok()
            .filter(|&t| t >= 0.0 && t.is_finite())
            .ok_or_else(|| format!("{flag} expects a non-negative number, got '{v}'")),
    }
}

// ---------------------------------------------------------------------
// Recording

fn record_main(args: &[String], smoke: bool) -> ExitCode {
    let default_out = if smoke {
        DEFAULT_SMOKE_OUT
    } else {
        DEFAULT_FULL_OUT
    };
    let out_path = flag_value(args, "--out").unwrap_or_else(|| default_out.to_string());
    let artifact = record(smoke);
    let json = artifact.to_string_pretty();
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("sweep: cannot write {out_path}: {e}");
        return ExitCode::from(2);
    }
    println!("\nsweep: wrote {out_path} ({} bytes)", json.len());
    ExitCode::SUCCESS
}

/// One figure row: a stable key plus named metric fields.
fn row(key: String, fields: Vec<(&str, f64)>) -> Value {
    let mut pairs = vec![("key", Value::Str(key))];
    pairs.extend(fields.into_iter().map(|(k, v)| (k, Value::Num(v))));
    Value::obj(pairs)
}

fn overall_rows(rows: Vec<(Benchmark, usize, f64, f64)>) -> Value {
    Value::Arr(
        rows.into_iter()
            .map(|(bench, workers, saving, loss)| {
                row(
                    format!("{}/w{workers}", bench.label()),
                    vec![("energy_saving_pct", saving), ("time_loss_pct", loss)],
                )
            })
            .collect(),
    )
}

fn edp_rows(rows: Vec<(Benchmark, usize, f64)>) -> Value {
    Value::Arr(
        rows.into_iter()
            .map(|(bench, workers, edp)| {
                row(
                    format!("{}/w{workers}", bench.label()),
                    vec![("norm_edp", edp)],
                )
            })
            .collect(),
    )
}

fn saving_loss_rows<K: std::fmt::Display>(rows: Vec<(Benchmark, K, f64, f64)>) -> Value {
    Value::Arr(
        rows.into_iter()
            .map(|(bench, k, saving, loss)| {
                row(
                    format!("{}/{k}", bench.label()),
                    vec![("energy_saving_pct", saving), ("time_loss_pct", loss)],
                )
            })
            .collect(),
    )
}

fn strategy_rows(rows: Vec<(Benchmark, usize, f64, f64)>) -> Value {
    Value::Arr(
        rows.into_iter()
            .map(|(bench, workers, wp, wl)| {
                row(
                    format!("{}/w{workers}", bench.label()),
                    vec![("workpath_rel", wp), ("workload_rel", wl)],
                )
            })
            .collect(),
    )
}

fn record(smoke: bool) -> Value {
    let mut figures_out: Vec<(String, Value)> = Vec::new();
    // Headline accumulators over the overall (fig06/07) and EDP
    // (fig08/09) families.
    let mut saving_sum = 0.0;
    let mut loss_sum = 0.0;
    let mut overall_n = 0.0;
    let mut edp_sum = 0.0;
    let mut edp_n = 0.0;

    let run_overall = |id: &str,
                       name: &str,
                       system: System,
                       figures_out: &mut Vec<(String, Value)>,
                       saving_sum: &mut f64,
                       loss_sum: &mut f64,
                       overall_n: &mut f64| {
        let rows = figures::overall(id, system);
        for &(_, _, saving, loss) in &rows {
            *saving_sum += saving;
            *loss_sum += loss;
            *overall_n += 1.0;
        }
        figures_out.push((name.to_string(), overall_rows(rows)));
    };
    let run_edp = |id: &str,
                   name: &str,
                   system: System,
                   figures_out: &mut Vec<(String, Value)>,
                   edp_sum: &mut f64,
                   edp_n: &mut f64| {
        let rows = figures::edp(id, system);
        for &(_, _, e) in &rows {
            *edp_sum += e;
            *edp_n += 1.0;
        }
        figures_out.push((name.to_string(), edp_rows(rows)));
    };

    if !smoke {
        run_overall(
            "Figure 6",
            "fig06_overall_a",
            System::A,
            &mut figures_out,
            &mut saving_sum,
            &mut loss_sum,
            &mut overall_n,
        );
    }
    run_overall(
        "Figure 7",
        "fig07_overall_b",
        System::B,
        &mut figures_out,
        &mut saving_sum,
        &mut loss_sum,
        &mut overall_n,
    );
    if !smoke {
        run_edp(
            "Figure 8",
            "fig08_edp_a",
            System::A,
            &mut figures_out,
            &mut edp_sum,
            &mut edp_n,
        );
    }
    run_edp(
        "Figure 9",
        "fig09_edp_b",
        System::B,
        &mut figures_out,
        &mut edp_sum,
        &mut edp_n,
    );

    if !smoke {
        figures_out.push((
            "fig10_strategy_energy_a".to_string(),
            strategy_rows(figures::strategy_relative("Figure 10", System::A, true)),
        ));
        figures_out.push((
            "fig11_strategy_time_a".to_string(),
            strategy_rows(figures::strategy_relative("Figure 11", System::A, false)),
        ));
        figures_out.push((
            "fig12_strategy_energy_b".to_string(),
            strategy_rows(figures::strategy_relative("Figure 12", System::B, true)),
        ));
        figures_out.push((
            "fig13_strategy_time_b".to_string(),
            strategy_rows(figures::strategy_relative("Figure 13", System::B, false)),
        ));
        let fs_a = figures::freq_selection(
            "Figure 14",
            System::A,
            &[(2400, 1600), (2400, 1400), (2400, 1900)],
        );
        figures_out.push((
            "fig14_freq_selection_a".to_string(),
            saving_loss_rows(
                fs_a.into_iter()
                    .map(|(b, (f, s), sv, ls)| (b, format!("{f}-{s}"), sv, ls))
                    .collect(),
            ),
        ));
        let fs_b = figures::freq_selection(
            "Figure 15",
            System::B,
            &[(3600, 2700), (3600, 2100), (3600, 3300)],
        );
        figures_out.push((
            "fig15_freq_selection_b".to_string(),
            saving_loss_rows(
                fs_b.into_iter()
                    .map(|(b, (f, s), sv, ls)| (b, format!("{f}-{s}"), sv, ls))
                    .collect(),
            ),
        ));
        let nf_a = figures::nfreq(
            "Figure 16",
            System::A,
            &[&[2400, 1600], &[2400, 1600, 1400], &[2400, 1900, 1600]],
        );
        figures_out.push((
            "fig16_nfreq_a".to_string(),
            saving_loss_rows(
                nf_a.into_iter()
                    .map(|(b, i, sv, ls)| (b, format!("combo{i}"), sv, ls))
                    .collect(),
            ),
        ));
        let nf_b = figures::nfreq(
            "Figure 17",
            System::B,
            &[&[3600, 2700], &[3600, 3300, 2700]],
        );
        figures_out.push((
            "fig17_nfreq_b".to_string(),
            saving_loss_rows(
                nf_b.into_iter()
                    .map(|(b, i, sv, ls)| (b, format!("combo{i}"), sv, ls))
                    .collect(),
            ),
        ));
        figures_out.push((
            "fig18_scheduling".to_string(),
            saving_loss_rows(
                figures::scheduling("Figure 18", System::B)
                    .into_iter()
                    .map(|(b, m, sv, ls)| (b, m.to_string(), sv, ls))
                    .collect(),
            ),
        ));
    }

    let headline = Value::obj(vec![
        (
            "energy_saving_pct",
            Value::Num(saving_sum / overall_n.max(1.0)),
        ),
        ("time_loss_pct", Value::Num(loss_sum / overall_n.max(1.0))),
        ("norm_edp", Value::Num(edp_sum / edp_n.max(1.0))),
    ]);
    println!(
        "\nheadline: energy saving {:.2}% | time loss {:.2}% | norm EDP {:.3}",
        saving_sum / overall_n.max(1.0),
        loss_sum / overall_n.max(1.0),
        edp_sum / edp_n.max(1.0),
    );

    Value::obj(vec![
        ("schema", Value::Str(ARTIFACT_SCHEMA.to_string())),
        (
            "mode",
            Value::Str(if smoke { "smoke" } else { "full" }.to_string()),
        ),
        ("trials", Value::Num(hermes_bench::trials() as f64)),
        ("scale", Value::Num(hermes_bench::scale())),
        ("headline", headline),
        ("figures", Value::Obj(figures_out.into_iter().collect())),
        ("sample_run_report", sample_run_report(smoke).to_value()),
    ])
}

/// Ring capacity per stream for the smoke sample run: sized so the
/// smoke-scale sort run — span events included — retains every event,
/// making the zero-drop assertion below meaningful.
const SMOKE_SAMPLE_RING_CAPACITY: usize = 1 << 18;

/// One telemetry-instrumented simulator run, embedded so the baseline
/// pins the RunReport schema next to the figures (and exercises the sink
/// wiring — including the steal-distance histogram — end to end on
/// every sweep).
///
/// Under the smoke protocol this run doubles as the overflow gate: the
/// rings are sized to hold the whole event stream and the report must
/// come back with zero dropped events, so any unaccounted EventRing
/// overwrite (or an event-volume regression that silently truncates
/// traces) fails the sweep instead of shipping a lossy baseline.
fn sample_run_report(smoke: bool) -> RunReport {
    let cell = Cell::new(Benchmark::Sort, System::B, 4, Policy::Unified);
    let sink = if smoke {
        Arc::new(RingSink::with_ring_capacity(
            cell.workers,
            SMOKE_SAMPLE_RING_CAPACITY,
        ))
    } else {
        // Full-scale runs emit far more events than any sane ring
        // retains; drops are expected there and exactly accounted.
        Arc::new(RingSink::new(cell.workers))
    };
    let dag = cell.bench.dag_scaled(0, hermes_bench::scale());
    let config = cell_config(&cell, 0)
        .with_seed(42)
        .with_telemetry(Arc::clone(&sink) as Arc<dyn TelemetrySink>);
    let report = hermes_sim::run(&dag, &config).expect("harness presets are consistent");
    let report = sink
        .report(
            "sort/B/w4/unified",
            "sim",
            report.elapsed.seconds(),
            report.energy_j,
        )
        .with_steal_distances(&config.worker_distances().expect("consistent placement"));
    if smoke {
        assert_eq!(
            report.totals().dropped_events,
            0,
            "smoke sample run overflowed its event rings; grow SMOKE_SAMPLE_RING_CAPACITY"
        );
    }
    report
}

// ---------------------------------------------------------------------
// Span-tracing overhead gate

/// Requests per timed pass of the overhead gate.
const GATE_REQUESTS: usize = 1_000;
/// Timed passes per configuration; the *minimum* is compared — noise
/// (preemption, thermal drift) only ever slows a pass down, so the min
/// is the cleanest estimate of the true cost.
const GATE_REPS: usize = 5;
/// Iterations of the per-request spin: a serially-dependent multiply
/// chain the optimizer cannot collapse, sized to the tens-of-µs
/// request class so the gate prices tracing against realistic request
/// bodies rather than empty closures (where the fixed ~µs per-request
/// event cost would dominate and the ratio would measure nothing but
/// the closure being empty).
const GATE_SPIN: u64 = 1 << 17;

/// Deterministic CPU work standing in for a request body.
fn gate_request_body(seed: u64) -> u64 {
    let mut x = seed | 1;
    for _ in 0..GATE_SPIN {
        x = x
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
    }
    std::hint::black_box(x)
}

/// One timed pass: build a 2-worker server (traced or not), push
/// [`GATE_REQUESTS`] through `submit`, redeem every ticket, and return
/// the elapsed seconds. Server construction and teardown sit outside
/// the timed window.
fn gate_pass(traced: bool) -> f64 {
    let mut builder = Server::builder().workers(2);
    if traced {
        // Big enough that no ring wraps: the gate prices the *recording*
        // path, and wrapped rings would price a subtly different one.
        builder =
            builder.telemetry(
                Arc::new(RingSink::with_ring_capacity(2, 1 << 15)) as Arc<dyn TelemetrySink>
            );
    }
    let server = builder.build();
    let t0 = Instant::now();
    let tickets: Vec<_> = (0..GATE_REQUESTS)
        .map(|i| server.submit(move || gate_request_body(i as u64)))
        .collect();
    for t in tickets {
        t.wait();
    }
    let elapsed = t0.elapsed().as_secs_f64();
    server.shutdown();
    elapsed
}

/// `--gate-overhead`: measure what request-span tracing costs on the
/// real serve path — an untraced server vs. one recording spans into a
/// `RingSink` — and fail if the ratio exceeds the budget (default
/// 1.05, i.e. ≤5%). The structural claim that a null/absent sink is
/// *exactly* free is a compile-shape test in `hermes-rt`; this gate
/// bounds the price of tracing when it is actually on.
fn gate_overhead_main(args: &[String]) -> ExitCode {
    let max_ratio = match tolerance(args, "--max-overhead", 1.05) {
        Ok(t) if t >= 1.0 => t,
        Ok(t) => {
            eprintln!("sweep: --max-overhead is a slowdown ratio and must be >= 1.0, got {t}");
            return ExitCode::from(2);
        }
        Err(e) => {
            eprintln!("sweep: {e}");
            return ExitCode::from(2);
        }
    };
    // Warm both shapes (thread spawn, allocator, branch predictors)
    // before any timed pass.
    gate_pass(false);
    gate_pass(true);
    let mut untraced = f64::INFINITY;
    let mut traced = f64::INFINITY;
    // Interleave the reps so slow drift on the host hits both
    // configurations alike instead of biasing whichever ran last.
    for _ in 0..GATE_REPS {
        untraced = untraced.min(gate_pass(false));
        traced = traced.min(gate_pass(true));
    }
    let ratio = traced / untraced.max(1e-12);
    println!("=== span-tracing overhead gate ===");
    println!("{GATE_REQUESTS} requests/pass, 2 workers, min of {GATE_REPS} interleaved passes");
    println!("untraced {:>9.3} ms", untraced * 1e3);
    println!(
        "traced   {:>9.3} ms  (RingSink + request spans + latency events)",
        traced * 1e3
    );
    println!("ratio    {ratio:>9.3}  (budget {max_ratio:.3})");
    if ratio > max_ratio {
        eprintln!("sweep: span tracing exceeds the {max_ratio:.3}x overhead budget");
        return ExitCode::from(1);
    }
    println!("overhead gate: ok");
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------
// Victim-selection ablation

/// Worker counts for the dense locality probe: enough workers that
/// several clock domains are fully populated on each system shape.
fn probe_workers(system: System) -> usize {
    match system {
        System::A => 8,
        System::B => 4,
    }
}

/// Run `sort` on `system` with workers packed densely onto cores (domain
/// siblings adjacent) under `victim`, and fold all trials into one
/// telemetry report. Returns the same-domain steal fraction and the
/// full steal-distance histogram.
///
/// Dense placement is deliberate: under the paper's distinct-domain
/// placement every victim is at distance ≥ 2, so "same-domain steals"
/// would be identically zero no matter the policy.
fn locality_probe(system: System, victim: VictimPolicy) -> (f64, Vec<u64>) {
    let workers = probe_workers(system);
    let cell = Cell::new(Benchmark::Sort, system, workers, Policy::Unified)
        .with_victim(victim)
        .with_placement(WorkerPlacement::Dense);
    let sink = Arc::new(RingSink::new(workers));
    let mut elapsed = 0.0;
    let mut energy = 0.0;
    for trial in 0..trials() as u64 {
        let dag = cell.bench.dag_scaled(trial, hermes_bench::scale());
        let cfg =
            cell_config(&cell, trial).with_telemetry(Arc::clone(&sink) as Arc<dyn TelemetrySink>);
        let r = hermes_sim::run(&dag, &cfg).expect("harness presets are consistent");
        elapsed += r.elapsed.seconds();
        energy += r.energy_j;
    }
    let distances = cell_config(&cell, 0)
        .worker_distances()
        .expect("dense probe fits the machine");
    let report = sink
        .report(
            &format!("sort/{}/dense/{victim}", system.label()),
            "sim",
            elapsed,
            energy,
        )
        .with_steal_distances(&distances);
    (
        report.same_domain_steal_fraction().unwrap_or(0.0),
        report.steal_distance_hist,
    )
}

fn ablate_main(args: &[String], smoke: bool) -> ExitCode {
    let tol = match parse_tolerances(args) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("sweep: {e}");
            return ExitCode::from(2);
        }
    };
    let baseline_path =
        flag_value(args, "--baseline").unwrap_or_else(|| DEFAULT_SMOKE_OUT.to_string());
    // The figure rows are only comparable to the committed baseline when
    // both ran the same protocol.
    let baseline = if smoke {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => match Value::parse(&text) {
                Ok(v) => Some(v),
                Err(e) => {
                    eprintln!("sweep: {baseline_path}: {e}");
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("sweep: no baseline at {baseline_path} ({e}); skipping the drift gate");
                None
            }
        }
    } else {
        None
    };

    let mode = if smoke { "smoke" } else { "full" };
    // Only the drift gate embeds a sample report (diff validates it on
    // both sides); without a baseline, skip that simulator run entirely.
    let sample = baseline
        .as_ref()
        .map(|_| sample_run_report(smoke).to_value());
    let mut drift_violations = 0;
    let mut rows = Vec::new();
    for policy in VictimPolicy::all() {
        let overall =
            figures::overall_victim(&format!("Ablation[{policy}] Figure 7"), System::B, policy);
        let edp = figures::edp_victim(&format!("Ablation[{policy}] Figure 9"), System::B, policy);
        let n = overall.len() as f64;
        let saving = overall.iter().map(|&(_, _, s, _)| s).sum::<f64>() / n;
        let loss = overall.iter().map(|&(_, _, _, l)| l).sum::<f64>() / n;
        let nedp = edp.iter().map(|&(_, _, e)| e).sum::<f64>() / edp.len() as f64;
        let (frac_a, hist_a) = locality_probe(System::A, policy);
        let (frac_b, hist_b) = locality_probe(System::B, policy);
        // The policy's figure rows as a diffable artifact, gated against
        // the committed baseline with the standard tolerances.
        if let Some(base) = &baseline {
            let artifact = Value::obj(vec![
                ("schema", Value::Str(ARTIFACT_SCHEMA.to_string())),
                ("mode", Value::Str(mode.to_string())),
                (
                    "headline",
                    Value::obj(vec![
                        ("energy_saving_pct", Value::Num(saving)),
                        ("time_loss_pct", Value::Num(loss)),
                        ("norm_edp", Value::Num(nedp)),
                    ]),
                ),
                (
                    "figures",
                    Value::obj(vec![
                        ("fig07_overall_b", overall_rows(overall)),
                        ("fig09_edp_b", edp_rows(edp)),
                    ]),
                ),
                (
                    "sample_run_report",
                    sample.clone().expect("gate implies a sample"),
                ),
            ]);
            println!("\n--- {policy}: drift vs {baseline_path} ---");
            drift_violations += diff(base, &artifact, &tol);
        }
        rows.push((policy, saving, loss, nedp, frac_a, frac_b, hist_a, hist_b));
    }

    println!("\n=== victim-selection ablation ===");
    println!(
        "{:<18} {:>13} {:>10} {:>9} {:>13} {:>13}",
        "policy", "energy-saving", "time-loss", "norm-EDP", "same-domain A", "same-domain B"
    );
    for (policy, saving, loss, nedp, frac_a, frac_b, _, _) in &rows {
        println!(
            "{:<18} {:>12.2}% {:>9.2}% {:>9.3} {:>13.3} {:>13.3}",
            policy.label(),
            saving,
            loss,
            nedp,
            frac_a,
            frac_b
        );
    }
    for (policy, _, _, _, _, _, hist_a, hist_b) in &rows {
        println!(
            "{:<18} steal-distance hist  A {:?}  B {:?}",
            policy.label(),
            hist_a,
            hist_b
        );
    }

    // Locality gate: on the System A shape the distance-weighted policy
    // must move strictly more successful steals into the thief's own
    // clock domain than uniform random does.
    let frac_of = |p: VictimPolicy| {
        rows.iter()
            .find(|r| r.0 == p)
            .map(|r| r.4)
            .expect("all policies ran")
    };
    let uniform_a = frac_of(VictimPolicy::UniformRandom);
    let weighted_a = frac_of(VictimPolicy::DistanceWeighted);
    let locality_ok = weighted_a > uniform_a;
    println!(
        "\nlocality gate (System A): distance-weighted {weighted_a:.3} > uniform-random {uniform_a:.3} -> {}",
        if locality_ok { "ok" } else { "FAIL" }
    );
    if drift_violations > 0 {
        eprintln!(
            "sweep: {drift_violations} ablation metric(s) drifted beyond baseline tolerances"
        );
    }
    if locality_ok && drift_violations == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

// ---------------------------------------------------------------------
// Deque ablation

/// Thief-side tallies of one contended-steal run.
#[derive(Debug, Clone, Copy, Default)]
struct StealProbe {
    /// Successful steals per second of steal-busy time — the headline.
    throughput: f64,
    stolen: u64,
    empty: u64,
    lost_races: u64,
    /// Wall-clock of the whole run (window + drain).
    elapsed_s: f64,
    /// Summed thief time inside steal trains (see below).
    busy_s: f64,
}

/// One owner feeding a single deque for a fixed wall-clock window
/// (yielding when it is full so thieves get supply) while three thieves
/// hammer `steal()` — the `deque/contended_steal` scenario as a
/// measured run.
///
/// Two measurement decisions keep the number about the *deque* instead
/// of the host scheduler (both matter on small CI hosts, where a fast
/// owner can finish an item quota before a thief is ever scheduled):
///
/// * the run is **time-boxed** across many scheduler quanta, behind a
///   start barrier, so both deques get identical thief overlap;
/// * each thief accumulates **steal-train time** — spans of
///   consecutive non-`Empty` outcomes — and the throughput is
///   successful steals per second of train time. `Empty` (starvation)
///   closes a train: waiting for the owner to refill is a supply
///   property, not a steal-path cost. `Retry` (contention) stays
///   *inside* the train: losing a race and re-arming is exactly the
///   cost the THE-vs-atomics comparison is after.
///
/// The driver is byte-for-byte the same for both deques.
fn contended_steal_run<D: TaskDeque<u64> + 'static>(
    dq: Arc<D>,
    window: std::time::Duration,
) -> StealProbe {
    const THIEVES: usize = 3;
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(std::sync::Barrier::new(THIEVES + 1));
    let handles: Vec<_> = (0..THIEVES)
        .map(|_| {
            let dq = Arc::clone(&dq);
            let stop = Arc::clone(&stop);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let (mut stolen, mut empty, mut lost) = (0u64, 0u64, 0u64);
                let mut busy = std::time::Duration::ZERO;
                let mut train: Option<Instant> = None;
                while !stop.load(Ordering::Relaxed) {
                    match dq.steal() {
                        Steal::Success { .. } => {
                            train.get_or_insert_with(Instant::now);
                            stolen += 1;
                        }
                        Steal::Empty => {
                            if let Some(t0) = train.take() {
                                busy += t0.elapsed();
                            }
                            empty += 1;
                            // Starvation: hand the core back so the
                            // owner can refill.
                            std::thread::yield_now();
                        }
                        // Contention: stay hot and keep the clock
                        // running — the lost race is steal-path cost.
                        Steal::Retry => {
                            train.get_or_insert_with(Instant::now);
                            lost += 1;
                        }
                    }
                }
                if let Some(t0) = train.take() {
                    busy += t0.elapsed();
                }
                (stolen, empty, lost, busy)
            })
        })
        .collect();
    barrier.wait();
    let start = Instant::now();
    let mut i = 0u64;
    while start.elapsed() < window {
        // Re-check the clock only every batch; the batch is small enough
        // that the window overshoot stays in the noise.
        for _ in 0..256 {
            if dq.push(i).is_err() {
                // Full: supply is ahead of the thieves; give them the
                // core instead of fighting them for the head.
                std::thread::yield_now();
            } else {
                i += 1;
            }
        }
    }
    stop.store(true, Ordering::Relaxed);
    let elapsed_s = start.elapsed().as_secs_f64();
    let mut probe = StealProbe {
        elapsed_s,
        ..StealProbe::default()
    };
    for h in handles {
        let (s, e, l, b) = h.join().expect("thief panicked");
        probe.stolen += s;
        probe.empty += e;
        probe.lost_races += l;
        probe.busy_s += b.as_secs_f64();
    }
    while dq.pop().is_some() {}
    probe.throughput = probe.stolen as f64 / probe.busy_s.max(1e-9);
    probe
}

/// Best-of-`rounds` contended-steal probe for one deque kind; the max
/// suppresses scheduler noise (a descheduled owner starves every thief
/// regardless of deque protocol).
fn contended_steal_probe(
    kind: DequeKind,
    window: std::time::Duration,
    rounds: usize,
) -> StealProbe {
    let mut best = StealProbe::default();
    for _ in 0..rounds {
        let probe = match kind {
            DequeKind::The => {
                contended_steal_run(Arc::new(TheDeque::<u64>::with_capacity(8192)), window)
            }
            DequeKind::LockFree => {
                contended_steal_run(Arc::new(LockFreeDeque::<u64>::with_capacity(8192)), window)
            }
        };
        if probe.throughput > best.throughput {
            best = probe;
        }
    }
    best
}

/// Per-element work slow enough that a parallel region spans many OS
/// scheduler ticks, so thieves get a chance even on single-core hosts
/// (the steal_matrix.rs pattern).
fn spin_work(x: &mut u64) {
    let mut acc = *x;
    for _ in 0..2_000 {
        acc = std::hint::black_box(acc.wrapping_mul(2654435761).rotate_left(7));
    }
    *x = acc;
}

/// A real `hermes-rt` pool on `kind` deques under a steal-heavy
/// fork-join workload, with the telemetry sink folding the
/// `empty_steals`/`lost_race_steals` split into a [`RunReport`].
fn rt_pool_probe(kind: DequeKind, smoke: bool) -> (hermes_rt::RtStats, RunReport) {
    const WORKERS: usize = 4;
    let sink = Arc::new(RingSink::new(WORKERS));
    let mut pool = Pool::builder()
        .workers(WORKERS)
        .deque(kind)
        .telemetry(Arc::clone(&sink) as Arc<dyn TelemetrySink>)
        .build();
    let elems: u64 = if smoke { 20_000 } else { 100_000 };
    // Steals depend on preemption timing on small hosts: retry a few
    // regions until the report has steal mass to split.
    for _ in 0..40 {
        let mut v: Vec<u64> = (0..elems).collect();
        pool.install(|| parallel_for(&mut v, 64, spin_work));
        if pool.stats().steals >= 20 {
            break;
        }
    }
    // Freeze the pool so counters and the sink stop moving before the
    // fold (idle workers otherwise keep recording empty sweeps).
    pool.stop();
    let stats = pool.stats();
    let elapsed = pool.elapsed_ns() as f64 / 1e9;
    let label = match kind {
        DequeKind::The => "deque-ablation/the",
        DequeKind::LockFree => "deque-ablation/lock-free",
    };
    (stats, sink.report(label, "rt", elapsed, 0.0))
}

fn deque_section(probe: &StealProbe, stats: &hermes_rt::RtStats, report: &RunReport) -> Value {
    Value::obj(vec![
        (
            "contended_steal_per_s",
            Value::Num((probe.throughput * 10.0).round() / 10.0),
        ),
        ("probe_stolen", Value::Num(probe.stolen as f64)),
        ("probe_empty_steals", Value::Num(probe.empty as f64)),
        (
            "probe_lost_race_steals",
            Value::Num(probe.lost_races as f64),
        ),
        ("probe_elapsed_s", Value::Num(probe.elapsed_s)),
        ("probe_steal_busy_s", Value::Num(probe.busy_s)),
        ("rt_steals", Value::Num(stats.steals as f64)),
        ("rt_empty_steals", Value::Num(stats.empty_steals as f64)),
        (
            "rt_lost_race_steals",
            Value::Num(stats.lost_race_steals as f64),
        ),
        (
            "rt_inline_fallbacks",
            Value::Num(stats.inline_fallbacks as f64),
        ),
        ("rt_run_report", report.to_value()),
    ])
}

fn ablate_deque_main(args: &[String], smoke: bool) -> ExitCode {
    let tol = match parse_tolerances(args) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("sweep: {e}");
            return ExitCode::from(2);
        }
    };
    let min_ratio = match tolerance(args, "--min-steal-ratio", 1.0) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sweep: {e}");
            return ExitCode::from(2);
        }
    };
    let out_path = flag_value(args, "--out").unwrap_or_else(|| DEFAULT_DEQUE_OUT.to_string());
    let baseline_path =
        flag_value(args, "--baseline").unwrap_or_else(|| DEFAULT_SMOKE_OUT.to_string());
    let baseline = if smoke {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => match Value::parse(&text) {
                Ok(v) => Some(v),
                Err(e) => {
                    eprintln!("sweep: {baseline_path}: {e}");
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("sweep: no baseline at {baseline_path} ({e}); skipping the drift gate");
                None
            }
        }
    } else {
        None
    };
    let mode = if smoke { "smoke" } else { "full" };

    // Figure family + drift gate. The simulator *models* the steal path
    // (its scheduler has no executable deque), so these rows cannot
    // depend on the deque under test — recording them once and gating
    // against the committed baseline pins exactly that: the deque swap
    // moves steal throughput, never the paper's energy/time/EDP story.
    let overall = figures::overall("Deque ablation: Figure 7", System::B);
    let edp = figures::edp("Deque ablation: Figure 9", System::B);
    let n = overall.len() as f64;
    let saving = overall.iter().map(|&(_, _, s, _)| s).sum::<f64>() / n;
    let loss = overall.iter().map(|&(_, _, _, l)| l).sum::<f64>() / n;
    let nedp = edp.iter().map(|&(_, _, e)| e).sum::<f64>() / edp.len() as f64;
    let headline = Value::obj(vec![
        ("energy_saving_pct", Value::Num(saving)),
        ("time_loss_pct", Value::Num(loss)),
        ("norm_edp", Value::Num(nedp)),
    ]);
    let figures_value = Value::obj(vec![
        ("fig07_overall_b", overall_rows(overall)),
        ("fig09_edp_b", edp_rows(edp)),
    ]);
    let mut drift_violations = 0;
    let sample = sample_run_report(smoke).to_value();
    if let Some(base) = &baseline {
        let comparable = Value::obj(vec![
            ("schema", Value::Str(ARTIFACT_SCHEMA.to_string())),
            ("mode", Value::Str(mode.to_string())),
            ("headline", headline.clone()),
            ("figures", figures_value.clone()),
            ("sample_run_report", sample.clone()),
        ]);
        println!("\n--- deque ablation: figure drift vs {baseline_path} ---");
        drift_violations = diff(base, &comparable, &tol);
    }

    // The measured halves: raw contended-steal throughput and the rt
    // pool's contention/starvation split, per deque kind.
    let (window_ms, rounds) = if smoke { (250, 3) } else { (1_000, 5) };
    let window = std::time::Duration::from_millis(window_ms);
    println!(
        "\n--- contended-steal probe ({window_ms} ms window, 3 thieves, best of {rounds}) ---"
    );
    let the_probe = contended_steal_probe(DequeKind::The, window, rounds);
    let lf_probe = contended_steal_probe(DequeKind::LockFree, window, rounds);
    let (the_stats, the_report) = rt_pool_probe(DequeKind::The, smoke);
    let (lf_stats, lf_report) = rt_pool_probe(DequeKind::LockFree, smoke);

    println!(
        "{:<12} {:>14} {:>9} {:>12} {:>12} {:>10} {:>12} {:>12}",
        "deque",
        "steals/s",
        "stolen",
        "empty",
        "lost-race",
        "rt-steals",
        "rt-empty",
        "rt-lost-race"
    );
    for (label, probe, stats) in [
        ("the", &the_probe, &the_stats),
        ("lock-free", &lf_probe, &lf_stats),
    ] {
        println!(
            "{:<12} {:>14.0} {:>9} {:>12} {:>12} {:>10} {:>12} {:>12}",
            label,
            probe.throughput,
            probe.stolen,
            probe.empty,
            probe.lost_races,
            stats.steals,
            stats.empty_steals,
            stats.lost_race_steals
        );
    }

    let ratio = lf_probe.throughput / the_probe.throughput.max(1e-9);
    let throughput_ok = ratio >= min_ratio;
    println!(
        "\nthroughput gate: lock-free/THE = {ratio:.2} (need >= {min_ratio:.2}) -> {}",
        if throughput_ok { "ok" } else { "FAIL" }
    );

    let artifact = Value::obj(vec![
        ("schema", Value::Str(DEQUE_ARTIFACT_SCHEMA.to_string())),
        ("mode", Value::Str(mode.to_string())),
        ("trials", Value::Num(hermes_bench::trials() as f64)),
        ("scale", Value::Num(hermes_bench::scale())),
        ("headline", headline),
        ("figures", figures_value),
        ("sample_run_report", sample),
        (
            "deques",
            Value::obj(vec![
                ("the", deque_section(&the_probe, &the_stats, &the_report)),
                ("lock_free", deque_section(&lf_probe, &lf_stats, &lf_report)),
            ]),
        ),
        (
            "gate",
            Value::obj(vec![
                (
                    "throughput_ratio",
                    Value::Num((ratio * 1000.0).round() / 1000.0),
                ),
                ("min_steal_ratio", Value::Num(min_ratio)),
                ("throughput_ok", Value::Bool(throughput_ok)),
                (
                    "figure_drift_violations",
                    Value::Num(drift_violations as f64),
                ),
            ]),
        ),
    ]);
    let json = artifact.to_string_pretty();
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("sweep: cannot write {out_path}: {e}");
        return ExitCode::from(2);
    }
    println!("sweep: wrote {out_path} ({} bytes)", json.len());

    if drift_violations > 0 {
        eprintln!("sweep: {drift_violations} figure metric(s) drifted beyond baseline tolerances");
    }
    if throughput_ok && drift_violations == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

// ---------------------------------------------------------------------
// Serving ablation (energy under open-loop load)

/// Workers in every serving cell.
const SERVE_WORKERS: usize = 4;
/// Offered utilizations swept, lowest first (the gate anchors on the
/// first entry).
const SERVE_UTILS: &[f64] = &[0.10, 0.30, 0.60, 0.90];
/// Base seed of the per-utilization arrival schedules; utilization
/// index is added so each point draws an independent (but fixed)
/// process shared by all four tempo/parking corners.
const SERVE_SEED: u64 = 0x5EED_CAFE;
/// Elements and grain of the per-request fork-join kernel: 8 leaf
/// chunks, enough join structure that tempo hooks fire inside requests.
const SERVE_KERNEL_ELEMS: usize = 1024;
const SERVE_KERNEL_GRAIN: usize = 128;
/// Square-wave burst shape of the `--serve-elastic` grid: phases of
/// `requests / SERVE_BURST_PHASES` arrivals alternating between the
/// full rate and `SERVE_BURST_OFF_RATIO` of it — on/off load swings
/// wide enough that an elastic pool should sleep workers through the
/// lulls and wake them for the bursts.
const SERVE_BURST_PHASES: usize = 8;
const SERVE_BURST_OFF_RATIO: f64 = 0.25;

/// Per-element work of the request kernel (~150 ns): multiplicative
/// hashing, opaque to the optimizer.
fn serve_kernel_elem(x: &mut u64) {
    let mut acc = *x;
    for _ in 0..300 {
        acc = std::hint::black_box(acc.wrapping_mul(2654435761).rotate_left(7));
    }
    *x = acc;
}

/// One serving request: a small fork-join kernel over a scratch buffer,
/// so requests spawn/steal internally and the tempo controller sees the
/// full hook traffic.
fn serve_request() {
    let mut v: Vec<u64> = (0..SERVE_KERNEL_ELEMS as u64).collect();
    parallel_for(&mut v, SERVE_KERNEL_GRAIN, serve_kernel_elem);
    std::hint::black_box(&v);
}

/// Mean sequential service time of one request, measured on the
/// calling thread (outside any pool, `join` degrades to sequential).
/// Calibrates the offered-load rates to this host; the *schedule shape*
/// stays the seeded deterministic draw.
fn calibrate_service_time() -> f64 {
    for _ in 0..5 {
        serve_request(); // warmup
    }
    let rounds = 20;
    let t0 = Instant::now();
    for _ in 0..rounds {
        serve_request();
    }
    t0.elapsed().as_secs_f64() / rounds as f64
}

/// One cell of the serving grid.
struct ServeCell {
    util: f64,
    tempo: bool,
    parking: bool,
    /// Submitted through [`Server::submit_async`] (the refcounted
    /// future-task path) instead of run-once closures.
    is_async: bool,
    /// Mixed-priority multi-tenant corner: arrivals carry request
    /// classes (1-in-5 high, 1-in-5 background, rest normal) through
    /// the classed front door, so admission control is live.
    classes: bool,
    /// Driven by the square-wave burst schedule instead of the plain
    /// Poisson draw (the `--serve-elastic` grid).
    burst: bool,
    /// Pool runs under the elastic worker-count policy.
    elastic: bool,
    offered_rate_hz: f64,
    achieved_rate_hz: f64,
    elapsed_s: f64,
    energy_j: f64,
    /// Per-request attributed energy quantiles (µJ) from the server's
    /// request-energy histogram — the meter delta each request's polls
    /// consumed, not grid energy ÷ request count (which would smear
    /// idle burn over requests).
    req_energy_p50_uj: u64,
    req_energy_p99_uj: u64,
    p50_ns: u64,
    p99_ns: u64,
    p999_ns: u64,
    parks: u64,
    parked_ns: u64,
    injector_pops: u64,
    /// Per-injector-cell pop counters; their sum must reconcile exactly
    /// with the merged `injector_pops` (the telemetry back-compat
    /// contract of the sharded front door).
    injector_cell_pops: Vec<u64>,
    /// Arrivals refused by admission control (zero unless `classes`).
    shed: u64,
    /// High-priority-class p99 (zero unless `classes`): the tail the
    /// multi-tenant gate protects while background work is sheddable.
    high_p99_ns: u64,
    future_polls: u64,
    future_wakes: u64,
    future_repushes: u64,
    late_submissions: usize,
    /// Arrival accounting for the no-lost-work gate: after a drain,
    /// `completed == submitted - shed` must hold exactly in every cell.
    submitted: u64,
    completed: u64,
    /// Elastic sleep traffic (zero unless `elastic`).
    sleeps: u64,
    slept_ns: u64,
    wakes: u64,
}

fn serve_cell_key(
    util: f64,
    tempo: bool,
    parking: bool,
    is_async: bool,
    classes: bool,
    burst: bool,
    elastic: bool,
) -> String {
    format!(
        "u{:02.0}/tempo-{}/park-{}{}{}{}{}",
        util * 100.0,
        if tempo { "on" } else { "off" },
        if parking { "on" } else { "off" },
        if is_async { "/async" } else { "" },
        if classes { "/classes" } else { "" },
        if burst { "/burst" } else { "" },
        if elastic { "/elastic" } else { "" }
    )
}

/// The multi-tenant class mix of the `--serve-classes` corner,
/// deterministic by arrival index: every fifth request is
/// latency-critical, every fifth is sheddable background, the rest are
/// normal. Mirrors `examples/serve_latency.rs`.
fn serve_class_for(i: usize) -> SubmitOptions {
    match i % 5 {
        0 => SubmitOptions::default().priority(Priority::High),
        4 => SubmitOptions::default().priority(Priority::Background),
        _ => SubmitOptions::default(),
    }
}

/// Run one cell: a fresh server per corner so energy accounting starts
/// from zero, the same seeded schedule per utilization across corners.
/// The flag list mirrors the grid axes one-for-one (see
/// `serve_cell_key`), so positional bools beat an axes struct here.
#[allow(clippy::too_many_arguments)]
fn run_serve_cell(
    util: f64,
    tempo: bool,
    parking: bool,
    is_async: bool,
    classes: bool,
    burst: bool,
    elastic: bool,
    schedule: &PoissonSchedule,
    service_s: f64,
) -> ServeCell {
    assert!(
        !(is_async && classes),
        "the classes corner drives the sync classed front door"
    );
    let policy = if tempo {
        Policy::Unified
    } else {
        Policy::Baseline
    };
    // Both arms elect the same frequencies so the bootstrap operating
    // point (and thus the busy-power anchor) is identical; Baseline
    // simply never leaves it.
    let tempo_config = TempoConfig::builder()
        .policy(policy)
        .frequencies(vec![Frequency::from_mhz(2400), Frequency::from_mhz(1600)])
        .workers(SERVE_WORKERS)
        .build();
    let mut builder = Server::builder()
        .workers(SERVE_WORKERS)
        .tempo(tempo_config)
        .parking(parking)
        .emulated_dvfs(Frequency::from_mhz(2400), 8.0);
    if elastic {
        builder = builder.elastic(ElasticConfig::default());
    }
    let mut server = builder.build();
    let offered_rate_hz = util * serve_effective_cores() as f64 / service_s;
    let offsets = schedule.offsets(offered_rate_hz);
    let run = if is_async {
        run_open_loop_async(&server, &offsets, |_| async { serve_request() })
    } else if classes {
        run_open_loop_classed(&server, &offsets, |_| serve_request, serve_class_for)
    } else {
        run_open_loop(&server, &offsets, |_| serve_request)
    };
    server.stop();
    let elapsed_s = server.pool().elapsed_ns() as f64 / 1e9;
    let stats = server.pool().stats();
    let hist = server.latency();
    let req_energy = server.request_energy();
    ServeCell {
        util,
        tempo,
        parking,
        is_async,
        classes,
        burst,
        elastic,
        offered_rate_hz,
        achieved_rate_hz: schedule.len() as f64 / elapsed_s.max(1e-9),
        elapsed_s,
        energy_j: server.pool().total_energy().unwrap_or(0.0),
        req_energy_p50_uj: req_energy.p50().unwrap_or(0),
        req_energy_p99_uj: req_energy.p99().unwrap_or(0),
        p50_ns: hist.p50().unwrap_or(0),
        p99_ns: hist.p99().unwrap_or(0),
        p999_ns: hist.p999().unwrap_or(0),
        parks: stats.parks,
        parked_ns: stats.parked_ns,
        injector_pops: stats.injector_pops,
        injector_cell_pops: server.pool().injector_cell_pops(),
        shed: server.shed(),
        high_p99_ns: if classes {
            server.latency_for(Priority::High).p99().unwrap_or(0)
        } else {
            0
        },
        future_polls: stats.future_polls,
        future_wakes: stats.future_wakes,
        future_repushes: stats.future_repushes,
        late_submissions: run.late_submissions,
        submitted: server.submitted(),
        completed: server.completed(),
        sleeps: stats.sleeps,
        slept_ns: stats.slept_ns,
        wakes: stats.wakes,
    }
}

fn serve_cell_value(c: &ServeCell) -> Value {
    Value::obj(vec![
        (
            "key",
            Value::Str(serve_cell_key(
                c.util, c.tempo, c.parking, c.is_async, c.classes, c.burst, c.elastic,
            )),
        ),
        ("util", Value::Num(c.util)),
        ("tempo", Value::Bool(c.tempo)),
        ("parking", Value::Bool(c.parking)),
        ("async", Value::Bool(c.is_async)),
        ("classes", Value::Bool(c.classes)),
        ("burst", Value::Bool(c.burst)),
        ("elastic", Value::Bool(c.elastic)),
        ("offered_rate_hz", Value::Num(c.offered_rate_hz)),
        ("achieved_rate_hz", Value::Num(c.achieved_rate_hz)),
        ("elapsed_s", Value::Num(c.elapsed_s)),
        ("energy_j", Value::Num(c.energy_j)),
        ("req_energy_p50_uj", Value::Num(c.req_energy_p50_uj as f64)),
        ("req_energy_p99_uj", Value::Num(c.req_energy_p99_uj as f64)),
        ("p50_ns", Value::Num(c.p50_ns as f64)),
        ("p99_ns", Value::Num(c.p99_ns as f64)),
        ("p999_ns", Value::Num(c.p999_ns as f64)),
        ("parks", Value::Num(c.parks as f64)),
        ("parked_ns", Value::Num(c.parked_ns as f64)),
        ("injector_pops", Value::Num(c.injector_pops as f64)),
        (
            "injector_cell_pops",
            Value::Arr(
                c.injector_cell_pops
                    .iter()
                    .map(|&p| Value::Num(p as f64))
                    .collect(),
            ),
        ),
        ("shed", Value::Num(c.shed as f64)),
        ("high_p99_ns", Value::Num(c.high_p99_ns as f64)),
        ("future_polls", Value::Num(c.future_polls as f64)),
        ("future_wakes", Value::Num(c.future_wakes as f64)),
        ("future_repushes", Value::Num(c.future_repushes as f64)),
        ("late_submissions", Value::Num(c.late_submissions as f64)),
        ("submitted", Value::Num(c.submitted as f64)),
        ("completed", Value::Num(c.completed as f64)),
        ("sleeps", Value::Num(c.sleeps as f64)),
        ("slept_ns", Value::Num(c.slept_ns as f64)),
        ("wakes", Value::Num(c.wakes as f64)),
    ])
}

/// Per-cell injector pops of a serve-artifact grid cell, tolerant of
/// artifacts written before the front door was sharded: an absent
/// `injector_cell_pops` field parses as a single merged cell, so the
/// reconciliation invariant (per-cell sum == merged counter) holds
/// trivially for legacy JSON.
fn serve_cell_pops_of(cell: &Value) -> Vec<u64> {
    let merged = cell
        .get("injector_pops")
        .and_then(Value::as_f64)
        .unwrap_or(0.0) as u64;
    match cell.get("injector_cell_pops").and_then(Value::as_arr) {
        Some(per_cell) => per_cell
            .iter()
            .map(|p| p.as_f64().unwrap_or(0.0) as u64)
            .collect(),
        None => vec![merged],
    }
}

/// Cores the served pool can actually occupy: offered "utilization" is
/// relative to real capacity, so a 2-core CI host running 4 workers is
/// calibrated against 2 cores — 90 % offered load must stay below
/// saturation everywhere, or the latency columns measure queue growth
/// instead of service.
fn serve_effective_cores() -> usize {
    std::thread::available_parallelism()
        .map_or(1, usize::from)
        .min(SERVE_WORKERS)
}

fn serve_main(args: &[String], smoke: bool) -> ExitCode {
    let p99_factor = match tolerance(args, "--serve-p99-factor", 5.0) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("sweep: {e}");
            return ExitCode::from(2);
        }
    };
    let p99_floor_ms = match tolerance(args, "--serve-p99-floor-ms", 10.0) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("sweep: {e}");
            return ExitCode::from(2);
        }
    };
    let gate_energy_attr = args.iter().any(|a| a == "--gate-energy-attr");
    let classes = args.iter().any(|a| a == "--serve-classes");
    let elastic = args.iter().any(|a| a == "--serve-elastic");
    let energy_attr_tol = match tolerance(args, "--energy-attr-tol", 0.02) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("sweep: {e}");
            return ExitCode::from(2);
        }
    };
    let out_path = flag_value(args, "--out").unwrap_or_else(|| DEFAULT_SERVE_OUT.to_string());
    let baseline_path =
        flag_value(args, "--baseline").unwrap_or_else(|| DEFAULT_SERVE_OUT.to_string());
    let requests = if smoke { 200 } else { 800 };
    let mode = if smoke { "smoke" } else { "full" };

    let service_s = calibrate_service_time();
    println!(
        "serve ablation: {SERVE_WORKERS} workers on {} effective core(s), \
         {requests} requests/cell, calibrated service time {:.1} µs",
        serve_effective_cores(),
        service_s * 1e6
    );

    // One seeded schedule per utilization point, shared by all four
    // tempo/parking corners so every corner replays the identical
    // arrival process.
    let schedules: Vec<PoissonSchedule> = (0..SERVE_UTILS.len())
        .map(|i| PoissonSchedule::unit(SERVE_SEED + i as u64, requests))
        .collect();

    let mut cells: Vec<ServeCell> = Vec::new();
    for (i, &util) in SERVE_UTILS.iter().enumerate() {
        for tempo in [false, true] {
            for parking in [false, true] {
                cells.push(run_serve_cell(
                    util,
                    tempo,
                    parking,
                    false,
                    false,
                    false,
                    false,
                    &schedules[i],
                    service_s,
                ));
            }
        }
    }
    // The async corner: the lowest-utilization point re-run through
    // `submit_async` (refcounted future tasks, wake-driven re-queues)
    // on the same seeded schedule, all four tempo/parking corners. The
    // paper's energy claim must survive the request path changing from
    // run-once closures to polled futures.
    let async_util = SERVE_UTILS[0];
    for tempo in [false, true] {
        for parking in [false, true] {
            cells.push(run_serve_cell(
                async_util,
                tempo,
                parking,
                true,
                false,
                false,
                false,
                &schedules[0],
                service_s,
            ));
        }
    }
    // The multi-tenant corner (--serve-classes): the *highest*
    // utilization point re-run through the classed front door with a
    // mixed-priority tenant population, on the on/on and off/off
    // corners. At 90 % offered load admission control is live —
    // background arrivals are sheddable — and the gate below holds the
    // high-priority tail to the same factor bound while the energy win
    // must survive the class machinery.
    let classes_util_idx = SERVE_UTILS.len() - 1;
    let classes_util = SERVE_UTILS[classes_util_idx];
    if classes {
        for (tempo, parking) in [(false, false), (true, true)] {
            cells.push(run_serve_cell(
                classes_util,
                tempo,
                parking,
                false,
                true,
                false,
                false,
                &schedules[classes_util_idx],
                service_s,
            ));
        }
    }
    // The elastic grid (--serve-elastic): every utilization point re-run
    // under the square-wave *burst* schedule — same seeded draw, the
    // lulls stretched to SERVE_BURST_OFF_RATIO of the base rate — on a
    // three-way grid: the stock off/off and tempo+parking corners, each
    // with and without the elastic worker-count policy. Bursty load is
    // where scaling the worker *count* pays beyond scaling frequency:
    // through a lull a tempo pool still keeps four thieves alive (slow,
    // parked-and-rechecking), while an elastic pool sleeps down to the
    // sentinel and wakes on the next burst's injector depth.
    let burst_schedules: Vec<PoissonSchedule> = if elastic {
        schedules
            .iter()
            .map(|s| s.square_wave(requests / SERVE_BURST_PHASES, SERVE_BURST_OFF_RATIO))
            .collect()
    } else {
        Vec::new()
    };
    if elastic {
        for (i, &util) in SERVE_UTILS.iter().enumerate() {
            for (tempo, parking) in [(false, false), (true, true)] {
                for el in [false, true] {
                    cells.push(run_serve_cell(
                        util,
                        tempo,
                        parking,
                        false,
                        false,
                        true,
                        el,
                        &burst_schedules[i],
                        service_s,
                    ));
                }
            }
        }
    }

    println!(
        "\n{:<28} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>7} {:>10}",
        "cell",
        "energy J",
        "eµJ/r p50",
        "eµJ/r p99",
        "p50 µs",
        "p99 µs",
        "p999 µs",
        "rate/s",
        "parks",
        "parked ms"
    );
    for c in &cells {
        println!(
            "{:<28} {:>9.3} {:>9} {:>9} {:>9.1} {:>9.1} {:>9.1} {:>9.0} {:>7} {:>10.1}",
            serve_cell_key(c.util, c.tempo, c.parking, c.is_async, c.classes, c.burst, c.elastic),
            c.energy_j,
            c.req_energy_p50_uj,
            c.req_energy_p99_uj,
            c.p50_ns as f64 / 1e3,
            c.p99_ns as f64 / 1e3,
            c.p999_ns as f64 / 1e3,
            c.achieved_rate_hz,
            c.parks,
            c.parked_ns as f64 / 1e6,
        );
    }

    // --- Gates -------------------------------------------------------
    let lowest = SERVE_UTILS[0];
    let cell = |tempo: bool, parking: bool, is_async: bool| {
        cells
            .iter()
            .find(|c| {
                c.util == lowest
                    && c.tempo == tempo
                    && c.parking == parking
                    && c.is_async == is_async
                    && !c.classes
                    && !c.burst
            })
            .expect("grid is complete")
    };
    let on_on = cell(true, true, false);
    let off_off = cell(false, false, false);

    // Gate 1: the controller's low-utilization energy win. Everything
    // thief-side idles most of the wall clock at 10 % utilization, so
    // tempo (slow spins) + parking (no spins) must beat the stock
    // configuration outright.
    let energy_ok = on_on.energy_j < off_off.energy_j;
    println!(
        "\nenergy gate (u{:02.0}): tempo+parking {:.3} J < off/off {:.3} J -> {}",
        lowest * 100.0,
        on_on.energy_j,
        off_off.energy_j,
        if energy_ok { "ok" } else { "FAIL" }
    );

    // Gate 2: the energy win may not be bought with the tail. Parking
    // adds a wakeup to cold requests and tempo slows thieves, so the
    // bound is a factor plus an absolute floor (CI hosts are noisy and
    // oversubscribed; see DESIGN.md §Serve for the tolerance rationale).
    let p99_bound_ns = off_off.p99_ns as f64 * p99_factor + p99_floor_ms * 1e6;
    let p99_ok = (on_on.p99_ns as f64) <= p99_bound_ns;
    println!(
        "p99 gate (u{:02.0}): tempo+parking {:.1} µs <= {:.1} µs ({}x off/off {:.1} µs + {} ms) -> {}",
        lowest * 100.0,
        on_on.p99_ns as f64 / 1e3,
        p99_bound_ns / 1e3,
        p99_factor,
        off_off.p99_ns as f64 / 1e3,
        p99_floor_ms,
        if p99_ok { "ok" } else { "FAIL" }
    );

    // Gates 1'/2', async corner: the same energy and tail bounds, but
    // with every request a polled future. The future-task layer adds a
    // poll dispatch and a refcount per request; it must not erase the
    // tempo+parking energy win nor blow the tail bound.
    let a_on_on = cell(true, true, true);
    let a_off_off = cell(false, false, true);
    let async_energy_ok = a_on_on.energy_j < a_off_off.energy_j;
    println!(
        "async energy gate (u{:02.0}): tempo+parking {:.3} J < off/off {:.3} J -> {}",
        lowest * 100.0,
        a_on_on.energy_j,
        a_off_off.energy_j,
        if async_energy_ok { "ok" } else { "FAIL" }
    );
    let async_p99_bound_ns = a_off_off.p99_ns as f64 * p99_factor + p99_floor_ms * 1e6;
    let async_p99_ok = (a_on_on.p99_ns as f64) <= async_p99_bound_ns;
    println!(
        "async p99 gate (u{:02.0}): tempo+parking {:.1} µs <= {:.1} µs \
         ({}x off/off {:.1} µs + {} ms) -> {}",
        lowest * 100.0,
        a_on_on.p99_ns as f64 / 1e3,
        async_p99_bound_ns / 1e3,
        p99_factor,
        a_off_off.p99_ns as f64 / 1e3,
        p99_floor_ms,
        if async_p99_ok { "ok" } else { "FAIL" }
    );
    // Sanity, not a perf gate: the async cells actually exercised the
    // future path (one poll per request at minimum), and the sync cells
    // never touched it.
    let future_path_ok = cells.iter().all(|c| {
        if c.is_async {
            c.future_polls >= requests as u64
        } else {
            c.future_polls == 0
        }
    });
    println!(
        "future-path gate: async cells polled futures, sync cells never did -> {}",
        if future_path_ok { "ok" } else { "FAIL" }
    );

    // Gates 1''/2'', multi-tenant corner (--serve-classes): at the
    // highest offered load with mixed priorities, tempo+parking must
    // still win on energy, and the *high-priority* tail must stay
    // within the factor bound of what the identical tempo+parking cell
    // delivers to an *unclassed* stream — adding classes and admission
    // control may not cost the protected tenant its tail (in practice
    // it buys the tail back: background is shed and high drains
    // first). The unclassed sibling is the reference, not the classed
    // off/off corner: at 90 % offered load the tempo arm runs
    // saturated, and the off/off high class (40 samples, microsecond
    // tail) swings ~10x run to run on an oversubscribed host.
    let mut classes_energy_ok = true;
    let mut classes_p99_ok = true;
    if classes {
        let c_corner = |tempo: bool| {
            cells
                .iter()
                .find(|c| c.classes && c.tempo == tempo)
                .expect("classes corners ran")
        };
        let c_on = c_corner(true);
        let c_off = c_corner(false);
        classes_energy_ok = c_on.energy_j < c_off.energy_j;
        println!(
            "classes energy gate (u{:02.0}): tempo+parking {:.3} J < off/off {:.3} J -> {} \
             [shed: on/on {}, off/off {}]",
            classes_util * 100.0,
            c_on.energy_j,
            c_off.energy_j,
            if classes_energy_ok { "ok" } else { "FAIL" },
            c_on.shed,
            c_off.shed,
        );
        let unclassed = cells
            .iter()
            .find(|c| {
                c.util == classes_util
                    && c.tempo
                    && c.parking
                    && !c.is_async
                    && !c.classes
                    && !c.burst
            })
            .expect("grid is complete");
        let classes_bound_ns = unclassed.p99_ns as f64 * p99_factor + p99_floor_ms * 1e6;
        classes_p99_ok = (c_on.high_p99_ns as f64) <= classes_bound_ns;
        println!(
            "classes high-p99 gate (u{:02.0}): high class {:.1} µs <= {:.1} µs \
             ({}x unclassed tempo+parking {:.1} µs + {} ms) -> {}",
            classes_util * 100.0,
            c_on.high_p99_ns as f64 / 1e3,
            classes_bound_ns / 1e3,
            p99_factor,
            unclassed.p99_ns as f64 / 1e3,
            p99_floor_ms,
            if classes_p99_ok { "ok" } else { "FAIL" },
        );
    }

    // Gates 1'''/2''', elastic grid (--serve-elastic): at the
    // lowest-utilization *burst* corner — long lulls, where sleeping
    // workers beat merely slow ones — elastic on top of tempo+parking
    // must strictly beat tempo+parking alone on energy, within the same
    // tail bound. Plus a sanity pair: the elastic cells actually slept
    // (and woke as often as they slept), and no non-elastic cell ever
    // did.
    let mut elastic_energy_ok = true;
    let mut elastic_p99_ok = true;
    let mut sleep_path_ok = true;
    if elastic {
        let b_cell = |tempo: bool, parking: bool, el: bool| {
            cells
                .iter()
                .find(|c| {
                    c.burst
                        && c.util == lowest
                        && c.tempo == tempo
                        && c.parking == parking
                        && c.elastic == el
                })
                .expect("elastic grid is complete")
        };
        let e_on = b_cell(true, true, true);
        let e_off = b_cell(true, true, false);
        elastic_energy_ok = e_on.energy_j < e_off.energy_j;
        println!(
            "elastic energy gate (u{:02.0} burst): elastic+tempo+parking {:.3} J \
             < tempo+parking {:.3} J -> {} [sleeps {}, slept {:.1} ms]",
            lowest * 100.0,
            e_on.energy_j,
            e_off.energy_j,
            if elastic_energy_ok { "ok" } else { "FAIL" },
            e_on.sleeps,
            e_on.slept_ns as f64 / 1e6,
        );
        let elastic_bound_ns = e_off.p99_ns as f64 * p99_factor + p99_floor_ms * 1e6;
        elastic_p99_ok = (e_on.p99_ns as f64) <= elastic_bound_ns;
        println!(
            "elastic p99 gate (u{:02.0} burst): {:.1} µs <= {:.1} µs \
             ({}x tempo+parking {:.1} µs + {} ms) -> {}",
            lowest * 100.0,
            e_on.p99_ns as f64 / 1e3,
            elastic_bound_ns / 1e3,
            p99_factor,
            e_off.p99_ns as f64 / 1e3,
            p99_floor_ms,
            if elastic_p99_ok { "ok" } else { "FAIL" }
        );
        sleep_path_ok = e_on.sleeps > 0
            && cells.iter().all(|c| {
                if c.elastic {
                    c.wakes == c.sleeps
                } else {
                    c.sleeps == 0
                }
            });
        println!(
            "sleep-path gate: elastic cells slept (every sleep woken), others never -> {}",
            if sleep_path_ok { "ok" } else { "FAIL" }
        );
    }

    // No-lost-work gate (always on): after each cell's drain the arrival
    // ledger closes exactly — every submitted request either completed
    // or was shed by admission. This is the invariant the elastic
    // machinery is most able to break (a task stranded in a sleeping
    // worker's deque would hang the drain; a lost wakeup would strand
    // the whole cell), so it is checked on every cell of every grid.
    let lost_work_ok = cells
        .iter()
        .all(|c| c.completed == c.submitted - c.shed && c.submitted == requests as u64);
    println!(
        "no-lost-work gate: completed == submitted - shed in every cell -> {}",
        if lost_work_ok { "ok" } else { "FAIL" }
    );

    // Cell-reconciliation gate (always on): in every cell the per-cell
    // injector pop counters sum *exactly* to the merged legacy counter
    // — the back-compat contract of the sharded front door. Exact, not
    // approximate: both sides count the same events at the same site.
    let mut cell_pops_ok = cells.iter().all(|c| {
        c.injector_cell_pops.iter().sum::<u64>() == c.injector_pops
            && !c.injector_cell_pops.is_empty()
    });
    println!(
        "cell-pops gate: per-cell injector pops reconcile with the merged counter -> {}",
        if cell_pops_ok { "ok" } else { "FAIL" }
    );

    // Gate 3: reproducibility of the deterministic half — the arrival
    // schedules must fingerprint-match the committed artifact (same
    // seeds, same draws, same request counts).
    let mut schedule_ok = true;
    match std::fs::read_to_string(&baseline_path) {
        Err(e) => {
            println!("schedule gate: no baseline at {baseline_path} ({e}); skipping");
        }
        Ok(text) => match Value::parse(&text) {
            Err(e) => {
                eprintln!("sweep: {baseline_path}: {e}");
                return ExitCode::from(2);
            }
            Ok(base) => {
                if base.get("schema").and_then(Value::as_str) != Some(SERVE_ARTIFACT_SCHEMA) {
                    eprintln!("sweep: {baseline_path}: not a serve-ablation artifact");
                    return ExitCode::from(2);
                }
                let base_mode = base.get("mode").and_then(Value::as_str).unwrap_or("?");
                if base_mode != mode {
                    println!(
                        "schedule gate skipped: baseline mode {base_mode} != {mode} \
                         (different request counts draw different schedules)"
                    );
                } else {
                    let empty = Vec::new();
                    let base_scheds = base
                        .get("schedules")
                        .and_then(Value::as_arr)
                        .unwrap_or(&empty);
                    for (i, sched) in schedules.iter().enumerate() {
                        let expect = base_scheds
                            .iter()
                            .find(|s| s.get("util").and_then(Value::as_f64) == Some(SERVE_UTILS[i]))
                            .and_then(|s| s.get("fingerprint").and_then(Value::as_str))
                            .map(str::to_string);
                        let got = format!("{:016x}", sched.fingerprint());
                        if expect.as_deref() != Some(got.as_str()) {
                            schedule_ok = false;
                            println!(
                                "schedule gate: u{:02.0} fingerprint {got} != baseline {:?}",
                                SERVE_UTILS[i] * 100.0,
                                expect
                            );
                        }
                    }
                    // The burst (square-wave) schedules are as
                    // deterministic as the base draws; when both this
                    // run and the baseline carry them, they must
                    // fingerprint-match too.
                    if let (false, Some(base_bursts)) = (
                        burst_schedules.is_empty(),
                        base.get("burst_schedules").and_then(Value::as_arr),
                    ) {
                        for (i, sched) in burst_schedules.iter().enumerate() {
                            let expect = base_bursts
                                .iter()
                                .find(|s| {
                                    s.get("util").and_then(Value::as_f64) == Some(SERVE_UTILS[i])
                                })
                                .and_then(|s| s.get("fingerprint").and_then(Value::as_str))
                                .map(str::to_string);
                            let got = format!("{:016x}", sched.fingerprint());
                            if expect.as_deref() != Some(got.as_str()) {
                                schedule_ok = false;
                                println!(
                                    "schedule gate: u{:02.0} burst fingerprint {got} \
                                     != baseline {:?}",
                                    SERVE_UTILS[i] * 100.0,
                                    expect
                                );
                            }
                        }
                    }
                    println!(
                        "schedule gate: arrival fingerprints vs {baseline_path} -> {}",
                        if schedule_ok { "ok" } else { "FAIL" }
                    );
                }
                // The committed baseline's grid must reconcile too,
                // through the back-compat parse: artifacts written
                // before the front door was sharded carry no per-cell
                // field and count as one merged cell.
                if let Some(grid) = base.get("grid").and_then(Value::as_arr) {
                    let base_ok = grid.iter().all(|cell| {
                        let merged = cell
                            .get("injector_pops")
                            .and_then(Value::as_f64)
                            .unwrap_or(0.0) as u64;
                        serve_cell_pops_of(cell).iter().sum::<u64>() == merged
                    });
                    cell_pops_ok &= base_ok;
                    println!(
                        "cell-pops gate (baseline grid, back-compat parse) -> {}",
                        if base_ok { "ok" } else { "FAIL" }
                    );
                }
            }
        },
    }

    // Gate 4: per-request energy is being measured at all. Every cell
    // runs under emulated DVFS and a request burns ~10² µs of busy
    // power, so a zero p50 means the metering path is broken, not that
    // requests are cheap.
    let req_energy_ok = cells.iter().all(|c| c.req_energy_p50_uj > 0);
    println!(
        "request-energy gate: every cell's p50 per-request energy > 0 µJ -> {}",
        if req_energy_ok { "ok" } else { "FAIL" }
    );

    // Gate 5 (opt-in, --gate-energy-attr): the attribution closure.
    // The lowest-utilization parking corners re-run with a telemetry
    // ring attached; the EnergyLedger joins the recorded power
    // intervals against the request span forest and must rebuild the
    // pool's own meter total within tolerance. This is the end-to-end
    // check that "joules per request" is an accounting identity, not an
    // estimate. Only the park-on corners are probed: a non-parking
    // thief records one StealAttempt per victim per spin iteration —
    // millions of events over a second of wall clock, which no
    // fixed-size ring can retain, and a ledger over a ring that dropped
    // events cannot certify closure. The parking corners still exercise
    // every power kind (busy-at-frequency, pre-park spin, parked).
    let mut energy_attr_ok = true;
    let mut probes: Vec<EnergyAttrProbe> = Vec::new();
    if gate_energy_attr {
        println!(
            "\nenergy-attribution gate (tol {:.1}%):",
            energy_attr_tol * 100.0
        );
        for tempo in [false, true] {
            let probe = run_energy_attr_probe(tempo, true, &schedules[0], service_s);
            let corner_ok = probe.dropped == 0 && probe.closure_err <= energy_attr_tol;
            energy_attr_ok &= corner_ok;
            println!(
                "  {:<28} closure {:>5.2}%  attributed {:.3} J  idle {:.3} J  \
                 unattributed {:.3} J  meter {:.3} J  spans {}  dropped {} -> {}",
                probe.key,
                probe.closure_err * 100.0,
                probe.attributed_j,
                probe.idle_j,
                probe.unattributed_busy_j,
                probe.meter_j,
                probe.spans,
                probe.dropped,
                if corner_ok { "ok" } else { "FAIL" }
            );
            probes.push(probe);
        }
        println!(
            "energy-attribution gate: ledger closes on every corner -> {}",
            if energy_attr_ok { "ok" } else { "FAIL" }
        );
    }

    let artifact = Value::obj(vec![
        ("schema", Value::Str(SERVE_ARTIFACT_SCHEMA.to_string())),
        ("mode", Value::Str(mode.to_string())),
        ("workers", Value::Num(SERVE_WORKERS as f64)),
        (
            "effective_cores",
            Value::Num(serve_effective_cores() as f64),
        ),
        ("requests_per_cell", Value::Num(requests as f64)),
        ("service_time_s", Value::Num(service_s)),
        (
            "schedules",
            Value::Arr(
                SERVE_UTILS
                    .iter()
                    .zip(&schedules)
                    .map(|(&util, s)| {
                        Value::obj(vec![
                            ("util", Value::Num(util)),
                            ("seed", Value::Num(s.seed() as f64)),
                            (
                                "fingerprint",
                                Value::Str(format!("{:016x}", s.fingerprint())),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "burst_schedules",
            Value::Arr(
                SERVE_UTILS
                    .iter()
                    .zip(&burst_schedules)
                    .map(|(&util, s)| {
                        Value::obj(vec![
                            ("util", Value::Num(util)),
                            ("seed", Value::Num(s.seed() as f64)),
                            (
                                "fingerprint",
                                Value::Str(format!("{:016x}", s.fingerprint())),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "grid",
            Value::Arr(cells.iter().map(serve_cell_value).collect()),
        ),
        (
            "gate",
            Value::obj({
                let mut fields = vec![
                    ("energy_ok", Value::Bool(energy_ok)),
                    (
                        "energy_on_on_j",
                        Value::Num((on_on.energy_j * 1e6).round() / 1e6),
                    ),
                    (
                        "energy_off_off_j",
                        Value::Num((off_off.energy_j * 1e6).round() / 1e6),
                    ),
                    ("p99_ok", Value::Bool(p99_ok)),
                    ("p99_factor", Value::Num(p99_factor)),
                    ("p99_floor_ms", Value::Num(p99_floor_ms)),
                    ("async_energy_ok", Value::Bool(async_energy_ok)),
                    ("async_p99_ok", Value::Bool(async_p99_ok)),
                    ("future_path_ok", Value::Bool(future_path_ok)),
                    ("schedule_ok", Value::Bool(schedule_ok)),
                    ("req_energy_ok", Value::Bool(req_energy_ok)),
                    ("cell_pops_ok", Value::Bool(cell_pops_ok)),
                    ("lost_work_ok", Value::Bool(lost_work_ok)),
                ];
                if classes {
                    fields.push(("classes_energy_ok", Value::Bool(classes_energy_ok)));
                    fields.push(("classes_high_p99_ok", Value::Bool(classes_p99_ok)));
                }
                if elastic {
                    fields.push(("elastic_energy_ok", Value::Bool(elastic_energy_ok)));
                    fields.push(("elastic_p99_ok", Value::Bool(elastic_p99_ok)));
                    fields.push(("sleep_path_ok", Value::Bool(sleep_path_ok)));
                }
                if gate_energy_attr {
                    fields.push(("energy_attr_ok", Value::Bool(energy_attr_ok)));
                    fields.push(("energy_attr_tol", Value::Num(energy_attr_tol)));
                }
                fields
            }),
        ),
        (
            "energy_attr",
            Value::Arr(
                probes
                    .iter()
                    .map(|p| {
                        Value::obj(vec![
                            ("key", Value::Str(p.key.clone())),
                            ("closure_err", Value::Num(p.closure_err)),
                            ("attributed_j", Value::Num(p.attributed_j)),
                            ("idle_j", Value::Num(p.idle_j)),
                            ("unattributed_busy_j", Value::Num(p.unattributed_busy_j)),
                            ("meter_j", Value::Num(p.meter_j)),
                            ("spans", Value::Num(p.spans as f64)),
                            ("dropped_events", Value::Num(p.dropped as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let json = artifact.to_string_pretty();
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("sweep: cannot write {out_path}: {e}");
        return ExitCode::from(2);
    }
    println!("sweep: wrote {out_path} ({} bytes)", json.len());

    if energy_ok
        && p99_ok
        && async_energy_ok
        && async_p99_ok
        && future_path_ok
        && classes_energy_ok
        && classes_p99_ok
        && elastic_energy_ok
        && elastic_p99_ok
        && sleep_path_ok
        && lost_work_ok
        && cell_pops_ok
        && schedule_ok
        && req_energy_ok
        && energy_attr_ok
    {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// One corner of the `--gate-energy-attr` closure probe: the
/// lowest-utilization serve cell re-run with a telemetry ring attached,
/// its power intervals joined against the request span forest.
struct EnergyAttrProbe {
    key: String,
    closure_err: f64,
    attributed_j: f64,
    idle_j: f64,
    unattributed_busy_j: f64,
    meter_j: f64,
    spans: usize,
    dropped: u64,
}

/// Ring capacity per stream for the attribution probe. Power intervals,
/// span events, and per-request latency/energy events for a few hundred
/// requests fit with room to spare; the gate fails on any drop because
/// a truncated ledger cannot certify closure.
const ENERGY_ATTR_RING_CAPACITY: usize = 1 << 16;

fn run_energy_attr_probe(
    tempo: bool,
    parking: bool,
    schedule: &PoissonSchedule,
    service_s: f64,
) -> EnergyAttrProbe {
    let policy = if tempo {
        Policy::Unified
    } else {
        Policy::Baseline
    };
    let tempo_config = TempoConfig::builder()
        .policy(policy)
        .frequencies(vec![Frequency::from_mhz(2400), Frequency::from_mhz(1600)])
        .workers(SERVE_WORKERS)
        .build();
    let sink = Arc::new(RingSink::with_ring_capacity(
        SERVE_WORKERS,
        ENERGY_ATTR_RING_CAPACITY,
    ));
    let mut server = Server::builder()
        .workers(SERVE_WORKERS)
        .tempo(tempo_config)
        .parking(parking)
        .emulated_dvfs(Frequency::from_mhz(2400), 8.0)
        .telemetry(Arc::clone(&sink) as Arc<dyn TelemetrySink>)
        .build();
    let util = SERVE_UTILS[0];
    let offered_rate_hz = util * serve_effective_cores() as f64 / service_s;
    let offsets = schedule.offsets(offered_rate_hz);
    let _run = run_open_loop(&server, &offsets, |_| serve_request);
    server.stop();
    // `total_energy` is the attributable meter (per-worker busy + spin
    // + parked); the ledger's three buckets must rebuild exactly it.
    let meter_j = server.pool().total_energy().unwrap_or(0.0);
    let forest = SpanForest::from_sink(&sink);
    let ledger = EnergyLedger::from_sink(&sink, &forest, meter_j);
    EnergyAttrProbe {
        key: serve_cell_key(util, tempo, parking, false, false, false, false),
        closure_err: ledger.closure_error(),
        attributed_j: ledger.attributed_j,
        idle_j: ledger.idle_j,
        unattributed_busy_j: ledger.unattributed_busy_j,
        meter_j,
        spans: forest.len(),
        dropped: ledger.dropped_events,
    }
}

// ---------------------------------------------------------------------
// Energy trend

/// The energy headline of one artifact, schema-aware.
struct EnergyPoint {
    path: String,
    mode: String,
    value: f64,
}

/// What `--energy-trend` compares for a given artifact schema: the
/// metric name, whether larger values are better, and the default
/// step tolerance (override with `--tol-energy-trend`).
struct TrendMetric {
    schema: &'static str,
    metric: &'static str,
    higher_is_better: bool,
    default_tol: f64,
}

const TREND_METRICS: &[TrendMetric] = &[
    // The paper's headline: % energy saved vs. baseline (points).
    TrendMetric {
        schema: ARTIFACT_SCHEMA,
        metric: "headline.energy_saving_pct",
        higher_is_better: true,
        default_tol: 1.0,
    },
    // The serving win as a ratio (tempo+parking ÷ off/off energy at
    // the lowest utilization): dividing out the wall-clock joules makes
    // the number comparable across hosts of different speeds, which
    // absolute on_on joules are not.
    TrendMetric {
        schema: SERVE_ARTIFACT_SCHEMA,
        metric: "gate.energy_on_on_j / gate.energy_off_off_j",
        higher_is_better: false,
        default_tol: 0.10,
    },
];

fn energy_trend_extract(path: &str, v: &Value) -> Result<(&'static TrendMetric, f64), String> {
    let schema = v
        .get("schema")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{path}: missing schema tag"))?;
    let metric = TREND_METRICS
        .iter()
        .find(|m| m.schema == schema)
        .ok_or_else(|| format!("{path}: schema '{schema}' has no energy headline to trend"))?;
    let field = |dotted: &str| -> Result<f64, String> {
        let mut node = v;
        for part in dotted.split('.') {
            node = node
                .get(part)
                .ok_or_else(|| format!("{path}: missing {dotted}"))?;
        }
        node.as_f64()
            .ok_or_else(|| format!("{path}: {dotted} is not a number"))
    };
    let value = if schema == ARTIFACT_SCHEMA {
        field("headline.energy_saving_pct")?
    } else {
        let on_on = field("gate.energy_on_on_j")?;
        let off_off = field("gate.energy_off_off_j")?;
        if off_off <= 0.0 {
            return Err(format!("{path}: gate.energy_off_off_j is not positive"));
        }
        on_on / off_off
    };
    Ok((metric, value))
}

fn energy_trend_main(args: &[String]) -> ExitCode {
    // Positionals are the artifact paths, oldest first (main already
    // validated there are at least two).
    let mut paths = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if VALUE_FLAGS.contains(&a.as_str()) {
            i += 2;
        } else if a.starts_with('-') {
            i += 1;
        } else {
            paths.push(a.clone());
            i += 1;
        }
    }
    let mut metric: Option<&'static TrendMetric> = None;
    let mut points: Vec<EnergyPoint> = Vec::new();
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("sweep: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let v = match Value::parse(&text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("sweep: {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let (m, value) = match energy_trend_extract(path, &v) {
            Ok(x) => x,
            Err(e) => {
                eprintln!("sweep: {e}");
                return ExitCode::from(2);
            }
        };
        // One metric per trend: mixing a baseline artifact into a serve
        // trend (or vice versa) compares incommensurable numbers.
        if let Some(prev) = metric {
            if !std::ptr::eq(prev, m) {
                eprintln!("sweep: {path}: schema differs from earlier artifacts in the trend");
                return ExitCode::from(2);
            }
        }
        metric = Some(m);
        points.push(EnergyPoint {
            path: path.clone(),
            mode: v
                .get("mode")
                .and_then(Value::as_str)
                .unwrap_or("?")
                .to_string(),
            value,
        });
    }
    let metric = metric.expect("at least two artifacts were loaded");
    // Same-mode requirement: a smoke headline and a full headline
    // average different figure families (and serve modes draw different
    // request counts), so a cross-mode step is protocol difference.
    if points.windows(2).any(|w| w[0].mode != w[1].mode) {
        eprintln!("sweep: --energy-trend artifacts span different modes; record one mode");
        return ExitCode::from(2);
    }
    let tol = match tolerance(args, "--tol-energy-trend", metric.default_tol) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("sweep: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "energy trend ({}, {} mode): {} ({}; step tolerance {})",
        metric.schema,
        points[0].mode,
        metric.metric,
        if metric.higher_is_better {
            "higher is better"
        } else {
            "lower is better"
        },
        tol
    );
    let mut regressions = 0;
    for (i, p) in points.iter().enumerate() {
        if i == 0 {
            println!("  {:<40} {:>10.4} {:>10}", p.path, p.value, "-");
            continue;
        }
        let step = p.value - points[i - 1].value;
        // Only bad-direction drift beyond tolerance regresses; moves in
        // the good direction re-baseline the trend at the better value.
        let bad = if metric.higher_is_better { -step } else { step };
        let regressed = bad > tol;
        if regressed {
            regressions += 1;
        }
        println!(
            "  {:<40} {:>10.4} {:>+10.4}{}",
            p.path,
            p.value,
            step,
            if regressed { " REGRESSION" } else { "" }
        );
    }
    if regressions == 0 {
        println!(
            "sweep: energy headline held across {} artifact(s)",
            points.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("sweep: {regressions} energy regression step(s) beyond tolerance");
        ExitCode::FAILURE
    }
}

// ---------------------------------------------------------------------
// Diffing

struct Tolerances {
    headline_pct: f64,
    headline_edp: f64,
    row_pct: f64,
    row_edp: f64,
    row_ratio: f64,
}

fn parse_tolerances(args: &[String]) -> Result<Tolerances, String> {
    Ok(Tolerances {
        headline_pct: tolerance(args, "--tol-headline", 1.0)?,
        headline_edp: tolerance(args, "--tol-headline-edp", 0.02)?,
        row_pct: tolerance(args, "--tol-row", 5.0)?,
        row_edp: tolerance(args, "--tol-row-edp", 0.10)?,
        row_ratio: tolerance(args, "--tol-row-ratio", 0.25)?,
    })
}

fn diff_main(args: &[String]) -> ExitCode {
    // The two positionals after flag filtering are BASE and NEW (main
    // already validated the count); accept them in order.
    let mut paths = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if VALUE_FLAGS.contains(&a.as_str()) {
            i += 2;
        } else if a.starts_with('-') {
            i += 1;
        } else {
            paths.push(a.clone());
            i += 1;
        }
    }
    let (base_path, new_path) = (&paths[0], &paths[1]);
    let tol = match parse_tolerances(args) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("sweep: {e}");
            return ExitCode::from(2);
        }
    };
    let load = |path: &str| -> Result<Value, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let v = Value::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        match v.get("schema").and_then(Value::as_str) {
            Some(ARTIFACT_SCHEMA) => Ok(v),
            Some(other) => Err(format!("{path}: unsupported schema '{other}'")),
            None => Err(format!("{path}: missing schema tag")),
        }
    };
    let (base, new) = match (load(base_path), load(new_path)) {
        (Ok(b), Ok(n)) => (b, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("sweep: {e}");
            return ExitCode::from(2);
        }
    };
    match diff(&base, &new, &tol) {
        0 => {
            println!("sweep: {new_path} agrees with {base_path} within tolerances");
            ExitCode::SUCCESS
        }
        n => {
            eprintln!("sweep: {n} metric(s) drifted beyond tolerance");
            ExitCode::FAILURE
        }
    }
}

/// Tolerance for a metric field, by name. Percentage-point fields get
/// `--tol-row`; normalized quantities get scales of their own —
/// applying the 5-point row tolerance to a ~1.0-scale ratio would make
/// that gate vacuous.
fn field_tolerance(field: &str, tol: &Tolerances) -> f64 {
    match field {
        "norm_edp" => tol.row_edp,
        // Strategy contributions normalized to the unified policy
        // (~0.3–1.5): noisier than EDP (a ratio of two small
        // percentages), hence the wider default.
        "workpath_rel" | "workload_rel" => tol.row_ratio,
        _ => tol.row_pct,
    }
}

fn diff(base: &Value, new: &Value, tol: &Tolerances) -> usize {
    let mut violations = 0;

    // Headline: the gate CI cares about — but only between artifacts of
    // the same mode. A smoke headline averages the System B figures
    // while a full headline averages Systems A+B, so a cross-mode delta
    // is protocol difference, not drift; shared figure rows below are
    // still compared.
    let base_mode = base.get("mode").and_then(Value::as_str).unwrap_or("?");
    let new_mode = new.get("mode").and_then(Value::as_str).unwrap_or("?");
    let headline_gate: &[(&str, f64)] = if base_mode == new_mode {
        &[
            ("energy_saving_pct", tol.headline_pct),
            ("time_loss_pct", tol.headline_pct),
            ("norm_edp", tol.headline_edp),
        ]
    } else {
        println!(
            "headline gate skipped: artifact modes differ ({base_mode} vs {new_mode}); \
             comparing shared figure rows only"
        );
        &[]
    };
    println!(
        "{:<34} {:>10} {:>10} {:>8} {:>8}",
        "metric", "base", "new", "drift", "tol"
    );
    for &(field, t) in headline_gate {
        let b = base
            .get("headline")
            .and_then(|h| h.get(field))
            .and_then(Value::as_f64);
        let n = new
            .get("headline")
            .and_then(|h| h.get(field))
            .and_then(Value::as_f64);
        match (b, n) {
            (Some(b), Some(n)) => {
                let drift = (n - b).abs();
                let flag = if drift > t { " DRIFT" } else { "" };
                if drift > t {
                    violations += 1;
                }
                println!(
                    "{:<34} {:>10.3} {:>10.3} {:>8.3} {:>8.3}{flag}",
                    format!("headline.{field}"),
                    b,
                    n,
                    drift,
                    t
                );
            }
            _ => {
                violations += 1;
                println!("{:<34} missing on one side", format!("headline.{field}"));
            }
        }
    }

    // Per-row comparison over the figures present in BOTH artifacts
    // (a smoke artifact diffs cleanly against a full one).
    let (Some(Value::Obj(base_figs)), Some(Value::Obj(new_figs))) =
        (base.get("figures"), new.get("figures"))
    else {
        eprintln!("sweep: malformed figures section");
        return violations + 1;
    };
    let mut compared = 0;
    for (fig, base_rows) in base_figs {
        let Some(new_rows) = new_figs.iter().find(|(k, _)| k == fig).map(|(_, v)| v) else {
            continue;
        };
        let (Some(base_rows), Some(new_rows)) = (base_rows.as_arr(), new_rows.as_arr()) else {
            violations += 1;
            continue;
        };
        for brow in base_rows {
            let Some(key) = brow.get("key").and_then(Value::as_str) else {
                continue;
            };
            let Some(nrow) = new_rows
                .iter()
                .find(|r| r.get("key").and_then(Value::as_str) == Some(key))
            else {
                violations += 1;
                println!("{fig}/{key:<24} row missing in new artifact");
                continue;
            };
            if let Value::Obj(fields) = brow {
                for (field, bval) in fields {
                    if field == "key" {
                        continue;
                    }
                    let (Some(b), Some(n)) =
                        (bval.as_f64(), nrow.get(field).and_then(Value::as_f64))
                    else {
                        violations += 1;
                        continue;
                    };
                    compared += 1;
                    let t = field_tolerance(field, tol);
                    let drift = (n - b).abs();
                    if drift > t {
                        violations += 1;
                        println!(
                            "{:<34} {:>10.3} {:>10.3} {:>8.3} {:>8.3} DRIFT",
                            format!("{fig}/{key}.{field}"),
                            b,
                            n,
                            drift,
                            t
                        );
                    }
                }
            }
        }
    }
    println!("compared {compared} row metrics; {violations} violation(s)");

    // The embedded RunReport must parse under the current schema — a
    // cheap guard against silently breaking the report format.
    for (side, artifact) in [("base", base), ("new", new)] {
        match artifact.get("sample_run_report") {
            Some(v) => {
                if let Err(e) = RunReport::from_value(v) {
                    violations += 1;
                    eprintln!("sweep: {side} sample_run_report invalid: {e}");
                }
            }
            None => {
                violations += 1;
                eprintln!("sweep: {side} artifact has no sample_run_report");
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Legacy serve artifacts (pre-sharded front door) have no
    /// `injector_cell_pops` field; they must parse as one merged cell
    /// so the reconciliation gate holds trivially across baselines.
    #[test]
    fn absent_per_cell_pops_parse_as_a_single_merged_cell() {
        let legacy = Value::parse(r#"{"key": "u10/tempo-on/park-on", "injector_pops": 42}"#)
            .expect("legacy cell parses");
        assert_eq!(serve_cell_pops_of(&legacy), vec![42]);

        let sharded = Value::parse(
            r#"{"key": "u90/tempo-on/park-on/classes",
                "injector_pops": 40, "injector_cell_pops": [12, 9, 11, 8]}"#,
        )
        .expect("sharded cell parses");
        let pops = serve_cell_pops_of(&sharded);
        assert_eq!(pops, vec![12, 9, 11, 8]);
        assert_eq!(
            pops.iter().sum::<u64>(),
            40,
            "per-cell pops reconcile with the merged counter"
        );
    }

    /// The cell key marks every corner axis, so grid rows stay
    /// self-describing in artifacts and tables.
    #[test]
    fn serve_cell_keys_mark_the_async_and_classes_corners() {
        assert_eq!(
            serve_cell_key(0.10, true, false, false, false, false, false),
            "u10/tempo-on/park-off"
        );
        assert_eq!(
            serve_cell_key(0.10, false, true, true, false, false, false),
            "u10/tempo-off/park-on/async"
        );
        assert_eq!(
            serve_cell_key(0.90, true, true, false, true, false, false),
            "u90/tempo-on/park-on/classes"
        );
        assert_eq!(
            serve_cell_key(0.10, true, true, false, false, true, true),
            "u10/tempo-on/park-on/burst/elastic"
        );
        assert_eq!(
            serve_cell_key(0.30, false, false, false, false, true, false),
            "u30/tempo-off/park-off/burst"
        );
    }
}
