//! Calibration probe: prints savings/loss for every benchmark × policy on
//! both systems so the power model and DAG shapes can be tuned against
//! the paper's reported bands.

use hermes_bench::{energy_saving_pct, measure, run_trial, time_loss_pct, Cell, System};
use hermes_core::Policy;
use hermes_workloads::Benchmark;

fn main() {
    for system in [System::A, System::B] {
        let workers = *system.worker_counts().last().unwrap();
        println!("== {} ({} workers) ==", system.label(), workers);
        for bench in Benchmark::all() {
            let base = measure(&Cell::new(bench, system, workers, Policy::Baseline));
            // Utilization probe from one baseline trial.
            let probe = run_trial(&Cell::new(bench, system, workers, Policy::Baseline), 3);
            let busy: f64 = probe.sched.busy_seconds_at.iter().map(|(_, s)| s).sum();
            let util = busy / (probe.elapsed.seconds() * workers as f64);
            print!("{:8} util={:4.2}", bench.label(), util);
            for policy in [Policy::WorkpathOnly, Policy::WorkloadOnly, Policy::Unified] {
                let h = measure(&Cell::new(bench, system, workers, policy));
                print!(
                    "  {}: e={:+5.1}% t={:+5.1}% slow={:4.2} steals={:6.0}",
                    policy.label(),
                    energy_saving_pct(&base, &h),
                    time_loss_pct(&base, &h),
                    h.slow_fraction,
                    h.steals,
                );
            }
            let probe = run_trial(&Cell::new(bench, system, workers, Policy::Unified), 3);
            print!("  [{}]", probe.tempo);
            println!();
        }
    }
}
