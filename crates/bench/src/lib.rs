//! # hermes-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! HERMES evaluation (paper §4). Each `benches/figNN_*.rs` target prints
//! the rows/series of one figure; this library holds the shared
//! machinery: system presets, trial protocol, normalisation, and table
//! formatting.
//!
//! Absolute joules/seconds come from the simulator's power model, not the
//! authors' testbed, so `EXPERIMENTS.md` compares *shapes* (who wins, by
//! roughly what factor, where crossovers fall), not raw magnitudes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;

use hermes_core::{Frequency, Policy, TempoConfig};
use hermes_sim::{DagSpec, MachineSpec, Mapping, SimConfig, SimReport, WorkerPlacement};
use hermes_topology::VictimPolicy;
use hermes_workloads::Benchmark;

/// The two evaluation machines (paper §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// 2× AMD Opteron 6378, 16 usable clock domains.
    A,
    /// AMD FX-8150, 4 usable clock domains.
    B,
}

impl System {
    /// The machine model.
    #[must_use]
    pub fn machine(self) -> MachineSpec {
        match self {
            System::A => MachineSpec::system_a(),
            System::B => MachineSpec::system_b(),
        }
    }

    /// Worker counts the paper evaluates on this system.
    #[must_use]
    pub fn worker_counts(self) -> &'static [usize] {
        match self {
            System::A => &[2, 4, 8, 16],
            System::B => &[2, 3, 4],
        }
    }

    /// The default 2-frequency tempo pair (fast/slow) used for the
    /// overall results (Figs. 6–9): 2.4/1.6 GHz on A, 3.6/2.7 GHz on B.
    #[must_use]
    pub fn default_pair(self) -> Vec<Frequency> {
        match self {
            System::A => vec![Frequency::from_mhz(2400), Frequency::from_mhz(1600)],
            System::B => vec![Frequency::from_mhz(3600), Frequency::from_mhz(2700)],
        }
    }

    /// Label used in figure headers.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            System::A => "System A",
            System::B => "System B",
        }
    }
}

/// One experimental cell: a benchmark on a system with a scheduler
/// configuration.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Which benchmark DAG to run.
    pub bench: Benchmark,
    /// Which machine.
    pub system: System,
    /// Worker count.
    pub workers: usize,
    /// Tempo policy.
    pub policy: Policy,
    /// Elected tempo frequencies, fastest first.
    pub freqs: Vec<Frequency>,
    /// Worker-core mapping.
    pub mapping: Mapping,
    /// Victim-selection policy.
    pub victim: VictimPolicy,
    /// Initial worker-to-core placement.
    pub placement: WorkerPlacement,
}

impl Cell {
    /// A cell with the system's default frequency pair and static
    /// mapping.
    #[must_use]
    pub fn new(bench: Benchmark, system: System, workers: usize, policy: Policy) -> Cell {
        Cell {
            bench,
            system,
            workers,
            policy,
            freqs: system.default_pair(),
            mapping: Mapping::Static,
            victim: VictimPolicy::UniformRandom,
            placement: WorkerPlacement::DistinctDomains,
        }
    }

    /// Replace the elected frequencies.
    #[must_use]
    pub fn with_freqs(mut self, mhz: &[u64]) -> Cell {
        self.freqs = mhz.iter().map(|&m| Frequency::from_mhz(m)).collect();
        self
    }

    /// Replace the mapping.
    #[must_use]
    pub fn with_mapping(mut self, mapping: Mapping) -> Cell {
        self.mapping = mapping;
        self
    }

    /// Replace the victim-selection policy.
    #[must_use]
    pub fn with_victim(mut self, victim: VictimPolicy) -> Cell {
        self.victim = victim;
        self
    }

    /// Replace the worker placement.
    #[must_use]
    pub fn with_placement(mut self, placement: WorkerPlacement) -> Cell {
        self.placement = placement;
        self
    }
}

/// Averaged measurements of one cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Mean execution time, seconds.
    pub time_s: f64,
    /// Mean energy by exact integration of the power model, joules.
    ///
    /// The paper integrates 100 Hz current samples over runs of tens of
    /// seconds (thousands of samples); at the simulator's shorter virtual
    /// runs that sampling aliases by up to a few percent, so comparisons
    /// use the exact integral. The sampled series still backs the
    /// time-series figures (19-22).
    pub energy_j: f64,
    /// Mean energy-delay product, joule-seconds.
    pub edp: f64,
    /// Mean fraction of busy time below the fastest frequency.
    pub slow_fraction: f64,
    /// Mean successful steals per run.
    pub steals: f64,
}

/// Number of trials (paper: 20 with the first 2 discarded). Override
/// with `HERMES_TRIALS` to trade precision for harness runtime.
#[must_use]
pub fn trials() -> usize {
    std::env::var("HERMES_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&t| t > 0)
        .unwrap_or(10)
}

/// Warm-up trials excluded from averages (paper discards the first 2).
pub const WARMUP_TRIALS: usize = 2;

/// DAG scale factor, overridable with `HERMES_SCALE` for smoke runs.
#[must_use]
pub fn scale() -> f64 {
    std::env::var("HERMES_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&s| s > 0.0)
        .unwrap_or(1.0)
}

/// Run one cell for the configured number of trials and average,
/// discarding warm-ups (seeds vary per trial like datasets vary per run).
///
/// # Panics
///
/// Panics if the simulation rejects the configuration — the presets in
/// this crate are always consistent.
#[must_use]
pub fn measure(cell: &Cell) -> Summary {
    let total = trials() + WARMUP_TRIALS;
    let mut time = 0.0;
    let mut energy = 0.0;
    let mut edp = 0.0;
    let mut slow = 0.0;
    let mut steals = 0.0;
    let mut counted = 0.0;
    for trial in 0..total {
        let report = run_trial(cell, trial as u64);
        if trial < WARMUP_TRIALS {
            continue;
        }
        time += report.elapsed.seconds();
        energy += report.energy_j;
        edp += report.edp();
        slow += report.sched.slow_fraction();
        steals += report.sched.steals as f64;
        counted += 1.0;
    }
    Summary {
        time_s: time / counted,
        energy_j: energy / counted,
        edp: edp / counted,
        slow_fraction: slow / counted,
        steals: steals / counted,
    }
}

/// Threshold-formula calibration factor used by the harness, per system
/// (`HERMES_THRESHOLD_SCALE` overrides both; see `DESIGN.md`
/// §"calibrated parameters"). Calibrated against the paper's reported
/// equilibrium on each machine: the 4-worker FX-8150 sees far fewer
/// drains than the 16-worker Opteron, so its thresholds sit closer to
/// the profiled average.
#[must_use]
pub fn threshold_scale(system: System) -> f64 {
    if let Some(s) = std::env::var("HERMES_THRESHOLD_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&s: &f64| s > 0.0)
    {
        return s;
    }
    match system {
        System::A => 0.62,
        System::B => 0.74,
    }
}

/// Run a single trial of a cell with an explicit seed.
///
/// # Panics
///
/// Panics if the simulation rejects the configuration.
#[must_use]
pub fn run_trial(cell: &Cell, seed: u64) -> SimReport {
    let dag: DagSpec = cell.bench.dag_scaled(seed, scale());
    hermes_sim::run(&dag, &cell_config(cell, seed)).expect("harness presets are consistent")
}

/// The [`SimConfig`] a cell runs under (shared with telemetry-probing
/// callers that need the placement's distance matrix).
///
/// # Panics
///
/// Panics if the cell's presets are inconsistent (they never are).
#[must_use]
pub fn cell_config(cell: &Cell, seed: u64) -> SimConfig {
    let tempo = TempoConfig::builder()
        .policy(cell.policy)
        .frequencies(cell.freqs.clone())
        .workers(cell.workers)
        .threshold_scale(threshold_scale(cell.system))
        .build();
    SimConfig::new(cell.system.machine(), tempo)
        .with_mapping(cell.mapping)
        .with_victim_policy(cell.victim)
        .with_placement(cell.placement)
        .with_seed(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1))
}

/// Percentage of energy HERMES saves relative to `baseline`
/// (positive = saving), as the paper's blue bars.
#[must_use]
pub fn energy_saving_pct(baseline: &Summary, hermes: &Summary) -> f64 {
    (1.0 - hermes.energy_j / baseline.energy_j) * 100.0
}

/// Percentage of time HERMES loses relative to `baseline`
/// (positive = slower), as the paper's red bars.
#[must_use]
pub fn time_loss_pct(baseline: &Summary, hermes: &Summary) -> f64 {
    (hermes.time_s / baseline.time_s - 1.0) * 100.0
}

/// Normalized EDP (HERMES / baseline), as Figs. 8–9.
#[must_use]
pub fn normalized_edp(baseline: &Summary, hermes: &Summary) -> f64 {
    hermes.edp / baseline.edp
}

/// Print a figure header in a consistent format.
pub fn figure_header(id: &str, title: &str, system: Option<System>) {
    println!();
    println!("==================================================================");
    println!("{id}: {title}");
    if let Some(s) = system {
        let m = s.machine();
        println!(
            "{} — {} | {} cores, {} clock domains, freqs {}",
            s.label(),
            m.name,
            m.cores(),
            m.domains(),
            m.freq_table
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("/")
        );
    }
    println!(
        "trials={} (+{} warm-up discarded), scale={}",
        trials(),
        WARMUP_TRIALS,
        scale()
    );
    println!("==================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_presets_match_paper() {
        assert_eq!(System::A.worker_counts(), &[2, 4, 8, 16]);
        assert_eq!(System::B.worker_counts(), &[2, 3, 4]);
        assert_eq!(System::A.default_pair()[0], Frequency::from_mhz(2400));
        assert_eq!(System::B.default_pair()[1], Frequency::from_mhz(2700));
    }

    #[test]
    fn percentage_math() {
        let base = Summary {
            time_s: 10.0,
            energy_j: 100.0,
            edp: 1000.0,
            slow_fraction: 0.0,
            steals: 0.0,
        };
        let hermes = Summary {
            time_s: 10.3,
            energy_j: 89.0,
            edp: 916.7,
            slow_fraction: 0.4,
            steals: 100.0,
        };
        assert!((energy_saving_pct(&base, &hermes) - 11.0).abs() < 1e-9);
        assert!((time_loss_pct(&base, &hermes) - 3.0).abs() < 1e-9);
        assert!((normalized_edp(&base, &hermes) - 0.9167).abs() < 1e-4);
    }

    #[test]
    fn single_trial_runs() {
        std::env::set_var("HERMES_SCALE", "0.02");
        let cell = Cell::new(Benchmark::Sort, System::B, 4, Policy::Unified);
        let report = run_trial(&cell, 0);
        assert!(report.elapsed.seconds() > 0.0);
        std::env::remove_var("HERMES_SCALE");
    }
}
