//! Paper Fig. 8: normalized energy-delay product on System A.
fn main() {
    hermes_bench::figures::edp("Figure 8", hermes_bench::System::A);
}
