//! Paper Fig. 9: normalized energy-delay product on System B.
fn main() {
    hermes_bench::figures::edp("Figure 9", hermes_bench::System::B);
}
