//! Paper Fig. 17: 2- vs 3-frequency tempo control on System B
//! (3.6/2.7, 3.6/3.3/2.7 GHz).
fn main() {
    hermes_bench::figures::nfreq(
        "Figure 17",
        hermes_bench::System::B,
        &[&[3600, 2700], &[3600, 3300, 2700]],
    );
}
