//! Paper Fig. 11: workpath vs workload time loss ratios, System A.
fn main() {
    hermes_bench::figures::strategy_relative("Figure 11", hermes_bench::System::A, false);
}
