//! Paper Fig. 15: slow-frequency selection on System B
//! (pairs 3.6/2.7, 3.6/2.1, 3.6/3.3 GHz).
fn main() {
    hermes_bench::figures::freq_selection(
        "Figure 15",
        hermes_bench::System::B,
        &[(3600, 2700), (3600, 2100), (3600, 3300)],
    );
}
