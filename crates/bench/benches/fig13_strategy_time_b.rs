//! Paper Fig. 13: workpath vs workload time loss ratios, System B.
fn main() {
    hermes_bench::figures::strategy_relative("Figure 13", hermes_bench::System::B, false);
}
