//! Paper Fig. 12: workpath vs workload energy contributions, System B.
fn main() {
    hermes_bench::figures::strategy_relative("Figure 12", hermes_bench::System::B, true);
}
