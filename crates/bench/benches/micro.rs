//! Criterion micro-benchmarks: deque operation throughput, runtime
//! fork-join overhead, and simulator event throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hermes_core::{Frequency, Policy, TempoConfig};
use hermes_deque::{LockFreeDeque, Steal, TaskDeque, TheDeque};
use hermes_rt::{join, Pool};
use hermes_sim::{DagSpec, MachineSpec, SimConfig};
use std::sync::Arc;

fn bench_deque_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("deque/serial_push_pop");
    group.throughput(Throughput::Elements(1024));
    group.bench_function("the", |b| {
        let dq: TheDeque<u64> = TheDeque::with_capacity(2048);
        b.iter(|| {
            for i in 0..1024u64 {
                dq.push(i).unwrap();
            }
            for _ in 0..1024 {
                std::hint::black_box(dq.pop());
            }
        });
    });
    group.bench_function("lock_free", |b| {
        let dq: LockFreeDeque<u64> = LockFreeDeque::with_capacity(2048);
        b.iter(|| {
            for i in 0..1024u64 {
                dq.push(i).unwrap();
            }
            for _ in 0..1024 {
                std::hint::black_box(dq.pop());
            }
        });
    });
    group.finish();
}

fn bench_steal_contention(c: &mut Criterion) {
    // The paper's THE lock vs lockless CAS under thieves hammering one
    // victim: the `sweep --ablate-deque` comparison at the
    // microbenchmark level.
    let mut group = c.benchmark_group("deque/contended_steal");
    group.throughput(Throughput::Elements(4096));
    fn contend<D: TaskDeque<u64> + 'static>(dq: Arc<D>) {
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let thieves: Vec<_> = (0..3)
            .map(|_| {
                let dq = Arc::clone(&dq);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut got = 0u64;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        if let Steal::Success { .. } = dq.steal() {
                            got += 1;
                        }
                    }
                    got
                })
            })
            .collect();
        for i in 0..4096u64 {
            while dq.push(i).is_err() {
                let _ = dq.pop();
            }
        }
        while dq.pop().is_some() {}
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for t in thieves {
            let _ = t.join();
        }
    }
    group.bench_function("the", |b| {
        b.iter(|| contend(Arc::new(TheDeque::<u64>::with_capacity(8192))));
    });
    group.bench_function("lock_free", |b| {
        b.iter(|| contend(Arc::new(LockFreeDeque::<u64>::with_capacity(8192))));
    });
    group.finish();
}

fn bench_join_overhead(c: &mut Criterion) {
    let pool = Pool::new(4);
    let mut group = c.benchmark_group("rt/join");
    group.bench_function("fib20_baseline_pool", |b| {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, r) = join(|| fib(n - 1), || fib(n - 2));
            a + r
        }
        b.iter(|| pool.install(|| std::hint::black_box(fib(20))));
    });
    group.finish();

    let tempo = TempoConfig::builder()
        .policy(Policy::Unified)
        .frequencies(vec![Frequency::from_mhz(2400), Frequency::from_mhz(1600)])
        .workers(4)
        .build();
    let tempo_pool = Pool::builder().workers(4).tempo(tempo).build();
    let mut group = c.benchmark_group("rt/join_with_tempo_hooks");
    group.bench_function("fib20_unified_pool", |b| {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, r) = join(|| fib(n - 1), || fib(n - 2));
            a + r
        }
        b.iter(|| tempo_pool.install(|| std::hint::black_box(fib(20))));
    });
    group.finish();
}

fn bench_sim_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/event_throughput");
    group.sample_size(10);
    for workers in [4usize, 16] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                let dag =
                    DagSpec::divide_and_conquer(10, 10_000, |i| 200_000 + (i as u64 % 7) * 40_000);
                let tempo = TempoConfig::builder()
                    .policy(Policy::Unified)
                    .frequencies(vec![Frequency::from_mhz(2400), Frequency::from_mhz(1600)])
                    .workers(workers)
                    .build();
                let cfg = SimConfig::new(MachineSpec::system_a(), tempo);
                b.iter(|| std::hint::black_box(hermes_sim::run(&dag, &cfg).unwrap()));
            },
        );
    }
    group.finish();
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    use hermes_telemetry::{Event, NullSink, RingSink, StealOutcome, TelemetrySink};

    // Raw sink-record cost: the RingSink's tally + ring stores vs. the
    // NullSink's empty body. This is the per-event price a steal path
    // pays once a sink is attached.
    let mut group = c.benchmark_group("telemetry/record");
    group.throughput(Throughput::Elements(1024));
    let ring = RingSink::new(4);
    group.bench_function("ring_sink", |b| {
        b.iter(|| {
            for i in 0..1024u64 {
                ring.record(
                    (i % 4) as usize,
                    i,
                    Event::StealAttempt {
                        victim: ((i + 1) % 4) as u32,
                        outcome: StealOutcome::Success,
                    },
                );
            }
        });
    });
    group.finish();

    let mut group = c.benchmark_group("telemetry/null_sink");
    group.throughput(Throughput::Elements(1024));
    let null = NullSink;
    group.bench_function("null_sink", |b| {
        b.iter(|| {
            for i in 0..1024u64 {
                null.record(
                    (i % 4) as usize,
                    i,
                    Event::StealAttempt {
                        victim: ((i + 1) % 4) as u32,
                        outcome: StealOutcome::Success,
                    },
                );
            }
        });
    });
    group.finish();

    // Whole-scheduler check: the same steal-heavy fork-join workload on
    // a pool with no sink, a NullSink, and a recording RingSink. The
    // first two must be indistinguishable (the satellite claim: the
    // steal path is unaffected when telemetry is off or null).
    fn fib(n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        let (a, b) = join(|| fib(n - 1), || fib(n - 2));
        a + b
    }
    let mut group = c.benchmark_group("telemetry/steal_path");
    let no_sink = Pool::new(4);
    group.bench_function("fib18_no_sink", |b| {
        b.iter(|| no_sink.install(|| std::hint::black_box(fib(18))));
    });
    let null_pool = Pool::builder()
        .workers(4)
        .telemetry(Arc::new(NullSink) as Arc<dyn TelemetrySink>)
        .build();
    group.bench_function("fib18_null_sink", |b| {
        b.iter(|| null_pool.install(|| std::hint::black_box(fib(18))));
    });
    let ring_pool = Pool::builder()
        .workers(4)
        .telemetry(Arc::new(RingSink::new(4)) as Arc<dyn TelemetrySink>)
        .build();
    group.bench_function("fib18_ring_sink", |b| {
        b.iter(|| ring_pool.install(|| std::hint::black_box(fib(18))));
    });
    group.finish();
}

fn bench_request_span_overhead(c: &mut Criterion) {
    use hermes_serve::Server;
    use hermes_telemetry::{NullSink, RingSink, TelemetrySink};

    // The serve-layer sibling of `telemetry/steal_path`: the same
    // request batch through an untraced server, a NullSink server (the
    // builder filters null sinks out, so this must price identically to
    // untraced), and a RingSink server paying for request spans plus
    // latency events. The `sweep --gate-overhead` CI gate bounds the
    // third-vs-first ratio; this bench is its drill-down.
    fn drive(server: &Server) {
        let tickets: Vec<_> = (0..256u64)
            .map(|i| server.submit(move || std::hint::black_box(i.wrapping_mul(i))))
            .collect();
        for t in tickets {
            t.wait();
        }
    }
    let mut group = c.benchmark_group("serve/request_span_path");
    group.throughput(Throughput::Elements(256));
    let untraced = Server::builder().workers(2).build();
    group.bench_function("untraced", |b| b.iter(|| drive(&untraced)));
    let null = Server::builder()
        .workers(2)
        .telemetry(Arc::new(NullSink) as Arc<dyn TelemetrySink>)
        .build();
    group.bench_function("null_sink", |b| b.iter(|| drive(&null)));
    let traced = Server::builder()
        .workers(2)
        .telemetry(Arc::new(RingSink::with_ring_capacity(2, 1 << 12)) as Arc<dyn TelemetrySink>)
        .build();
    group.bench_function("ring_sink_spans", |b| b.iter(|| drive(&traced)));
    group.finish();
}

criterion_group!(
    benches,
    bench_deque_ops,
    bench_steal_contention,
    bench_join_overhead,
    bench_sim_throughput,
    bench_telemetry_overhead,
    bench_request_span_overhead
);
criterion_main!(benches);
