//! Paper Fig. 6: overall energy savings and time loss on System A.
fn main() {
    hermes_bench::figures::overall("Figure 6", hermes_bench::System::A);
}
