//! Ablation benches for the design choices DESIGN.md calls out:
//! threshold calibration, threshold count `K`, DVFS transition latency,
//! and the interaction of the two strategies.
//!
//! These go beyond the paper's figures: they quantify how much each
//! design ingredient matters in this reconstruction.

use hermes_bench::{
    energy_saving_pct, figure_header, measure, threshold_scale, time_loss_pct, trials, Cell,
    System, WARMUP_TRIALS,
};
use hermes_core::{Frequency, Policy, TempoConfig};
use hermes_sim::{MachineSpec, SimConfig};
use hermes_workloads::Benchmark;

fn run_with_tempo(
    bench: Benchmark,
    machine: &MachineSpec,
    tempo: &TempoConfig,
    trial: u64,
) -> (f64, f64) {
    let dag = bench.dag_scaled(trial, hermes_bench::scale());
    let cfg = SimConfig::new(machine.clone(), tempo.clone()).with_seed(trial + 1);
    let r = hermes_sim::run(&dag, &cfg).expect("consistent config");
    (r.elapsed.seconds(), r.metered_energy_j)
}

fn averaged(bench: Benchmark, machine: &MachineSpec, tempo: &TempoConfig) -> (f64, f64) {
    let total = trials() + WARMUP_TRIALS;
    let (mut t, mut e, mut n) = (0.0, 0.0, 0.0);
    for trial in 0..total {
        let (ti, ei) = run_with_tempo(bench, machine, tempo, trial as u64);
        if trial >= WARMUP_TRIALS {
            t += ti;
            e += ei;
            n += 1.0;
        }
    }
    (t / n, e / n)
}

fn tempo_a(policy: Policy, workers: usize, k: usize, tscale: f64) -> TempoConfig {
    TempoConfig::builder()
        .policy(policy)
        .frequencies(vec![Frequency::from_mhz(2400), Frequency::from_mhz(1600)])
        .workers(workers)
        .k_thresholds(k)
        .threshold_scale(tscale)
        .build()
}

fn ablate_threshold_scale() {
    figure_header(
        "Ablation: threshold calibration",
        "Sweep of the threshold-formula scale factor (System A, sort, 16 workers)",
        Some(System::A),
    );
    let machine = MachineSpec::system_a();
    let base = averaged(
        Benchmark::Sort,
        &machine,
        &tempo_a(Policy::Baseline, 16, 2, 1.0),
    );
    println!("{:>6} {:>14} {:>12}", "scale", "energy-saving", "time-loss");
    for s in [0.4, 0.55, 0.7, 0.85, 1.0, 1.3] {
        let h = averaged(
            Benchmark::Sort,
            &machine,
            &tempo_a(Policy::Unified, 16, 2, s),
        );
        println!(
            "{:>6.2} {:>13.1}% {:>11.1}%",
            s,
            (1.0 - h.1 / base.1) * 100.0,
            (h.0 / base.0 - 1.0) * 100.0
        );
    }
    println!(
        "(higher scale -> higher thresholds -> more time below them -> more\n slowing: energy and loss rise together; the harness uses {:.2} on A)",
        threshold_scale(System::A)
    );
}

fn ablate_k_thresholds() {
    figure_header(
        "Ablation: K thresholds",
        "Number of workload thresholds (System A, compare, 16 workers)",
        Some(System::A),
    );
    let machine = MachineSpec::system_a();
    let base = averaged(
        Benchmark::Compare,
        &machine,
        &tempo_a(Policy::Baseline, 16, 2, 1.0),
    );
    println!("{:>3} {:>14} {:>12}", "K", "energy-saving", "time-loss");
    for k in [1, 2, 3, 4] {
        let h = averaged(
            Benchmark::Compare,
            &machine,
            &tempo_a(Policy::Unified, 16, k, threshold_scale(System::A)),
        );
        println!(
            "{:>3} {:>13.1}% {:>11.1}%",
            k,
            (1.0 - h.1 / base.1) * 100.0,
            (h.0 / base.0 - 1.0) * 100.0
        );
    }
}

fn ablate_dvfs_latency() {
    figure_header(
        "Ablation: DVFS settling latency",
        "Sensitivity to the operating-point transition time (System A, knn, 16 workers)",
        Some(System::A),
    );
    let mut machine = MachineSpec::system_a();
    let base_tempo = tempo_a(Policy::Baseline, 16, 2, 1.0);
    let uni_tempo = tempo_a(Policy::Unified, 16, 2, threshold_scale(System::A));
    println!(
        "{:>10} {:>14} {:>12}",
        "latency", "energy-saving", "time-loss"
    );
    for latency_us in [0u64, 10, 50, 200, 1000] {
        machine.dvfs_latency_ns = latency_us * 1000;
        let base = averaged(Benchmark::Knn, &machine, &base_tempo);
        let h = averaged(Benchmark::Knn, &machine, &uni_tempo);
        println!(
            "{:>8}us {:>13.1}% {:>11.1}%",
            latency_us,
            (1.0 - h.1 / base.1) * 100.0,
            (h.0 / base.0 - 1.0) * 100.0
        );
    }
    println!("(tempo decisions outlive the settling delay: results barely move until");
    println!(" the latency approaches task lengths, as the paper's overhead note argues)");
}

fn ablate_strategy_interaction() {
    figure_header(
        "Ablation: strategy interaction",
        "Unified vs the isolated strategies (System A, 16 workers)",
        Some(System::A),
    );
    println!(
        "{:<9} {:>10} {:>10} {:>10} {:>12}  (energy savings)",
        "bench", "workpath", "workload", "unified", "sum-isolated"
    );
    for bench in Benchmark::all() {
        let base = measure(&Cell::new(bench, System::A, 16, Policy::Baseline));
        let wp = measure(&Cell::new(bench, System::A, 16, Policy::WorkpathOnly));
        let wl = measure(&Cell::new(bench, System::A, 16, Policy::WorkloadOnly));
        let un = measure(&Cell::new(bench, System::A, 16, Policy::Unified));
        println!(
            "{:<9} {:>9.1}% {:>9.1}% {:>9.1}% {:>11.1}%   time: wp {:+.1}% wl {:+.1}% un {:+.1}%",
            bench.label(),
            energy_saving_pct(&base, &wp),
            energy_saving_pct(&base, &wl),
            energy_saving_pct(&base, &un),
            energy_saving_pct(&base, &wp) + energy_saving_pct(&base, &wl),
            time_loss_pct(&base, &wp),
            time_loss_pct(&base, &wl),
            time_loss_pct(&base, &un),
        );
    }
}

fn main() {
    ablate_threshold_scale();
    ablate_k_thresholds();
    ablate_dvfs_latency();
    ablate_strategy_interaction();
}
