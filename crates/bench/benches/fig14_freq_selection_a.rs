//! Paper Fig. 14: slow-frequency selection on System A
//! (pairs 2.4/1.6, 2.4/1.4, 2.4/1.9 GHz).
fn main() {
    hermes_bench::figures::freq_selection(
        "Figure 14",
        hermes_bench::System::A,
        &[(2400, 1600), (2400, 1400), (2400, 1900)],
    );
}
