//! Paper Fig. 18: static vs dynamic scheduling effectiveness (System A).
fn main() {
    hermes_bench::figures::scheduling("Figure 18", hermes_bench::System::A);
}
