//! Paper Fig. 7: overall energy savings and time loss on System B.
fn main() {
    hermes_bench::figures::overall("Figure 7", hermes_bench::System::B);
}
