//! Paper Figs. 19–22: power time series under static vs dynamic
//! scheduling (KNN and Ray at 16 and 8 workers on System A).
//!
//! The paper plots the raw 100 Hz meter samples of single executions; we
//! print a decimated series plus an ASCII sparkline per configuration and
//! write the full series to `target/figures/` as CSV.

use hermes_bench::{figure_header, run_trial, Cell, System};
use hermes_core::Policy;
use hermes_sim::Mapping;
use hermes_workloads::Benchmark;
use std::io::Write;

fn sparkline(series: &[(f64, f64)], buckets: usize) -> String {
    if series.is_empty() {
        return String::new();
    }
    let glyphs = ['.', ':', '-', '=', '+', '*', '#', '@'];
    let max = series.iter().map(|&(_, w)| w).fold(f64::MIN, f64::max);
    let min = series.iter().map(|&(_, w)| w).fold(f64::MAX, f64::min);
    let chunk = series.len().div_ceil(buckets);
    series
        .chunks(chunk)
        .map(|c| {
            let avg = c.iter().map(|&(_, w)| w).sum::<f64>() / c.len() as f64;
            let idx = if max > min {
                (((avg - min) / (max - min)) * (glyphs.len() - 1) as f64).round() as usize
            } else {
                0
            };
            glyphs[idx]
        })
        .collect()
}

fn main() {
    figure_header(
        "Figures 19-22",
        "Power time series: static vs dynamic scheduling (System A)",
        Some(System::A),
    );
    std::fs::create_dir_all("target/figures").ok();
    for (fig, bench, workers) in [
        ("fig19", Benchmark::Knn, 16),
        ("fig20", Benchmark::Knn, 8),
        ("fig21", Benchmark::Ray, 16),
        ("fig22", Benchmark::Ray, 8),
    ] {
        println!("\n--- {fig}: {bench}, {workers} workers ---");
        for mapping in [Mapping::Static, Mapping::dynamic_default()] {
            let cell = Cell::new(bench, System::A, workers, Policy::Unified).with_mapping(mapping);
            let report = run_trial(&cell, 5);
            let series = &report.power_series;
            let mean = report.mean_power_w;
            println!(
                "{:>8}: {} samples over {:.2}s, mean {:.1} W, energy {:.1} J",
                mapping.label(),
                series.len(),
                report.elapsed.seconds(),
                mean,
                report.metered_energy_j
            );
            println!("{:>8}  |{}|", "", sparkline(series, 72));
            let path = format!("target/figures/{fig}_{}.csv", mapping.label());
            if let Ok(mut f) = std::fs::File::create(&path) {
                writeln!(f, "seconds,watts").ok();
                for &(t, w) in series {
                    writeln!(f, "{t:.3},{w:.3}").ok();
                }
                println!("{:>8}  full series -> {path}", "");
            }
        }
    }
    println!("\n(paper: the two mappings show similar shapes per benchmark; dynamic");
    println!(" scheduling sits at a slightly higher power level from affinity churn)");
}
