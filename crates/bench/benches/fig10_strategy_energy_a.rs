//! Paper Fig. 10: workpath vs workload energy contributions, System A.
fn main() {
    hermes_bench::figures::strategy_relative("Figure 10", hermes_bench::System::A, true);
}
