//! Paper Fig. 16: 2- vs 3-frequency tempo control on System A
//! (2.4/1.6, 2.4/1.6/1.4, 2.4/1.9/1.6 GHz).
fn main() {
    hermes_bench::figures::nfreq(
        "Figure 16",
        hermes_bench::System::A,
        &[&[2400, 1600], &[2400, 1600, 1400], &[2400, 1900, 1600]],
    );
}
