//! Offline shim of the `criterion` crate: the subset of the API used by the
//! HERMES microbenchmarks, implemented as a minimal wall-clock runner.
//!
//! The container this workspace builds in has no crates.io access. This shim
//! keeps `cargo bench` compiling and producing useful (median-of-samples)
//! timings, without criterion's statistics, plotting, or CLI.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Number of timed samples per benchmark (before per-sample iteration
/// batching). Kept small: the shim is for smoke-benching, not statistics.
const DEFAULT_SAMPLES: usize = 10;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Mirror of `Criterion::configure_from_args`; the shim has no CLI.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            samples: DEFAULT_SAMPLES,
            throughput: None,
        }
    }

    /// Run a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("default");
        group.bench_function(id.to_string(), f);
        group.finish();
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            repr: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            repr: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.repr)
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the throughput used to derive rates in the report line.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Set the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Time `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.samples),
            target_samples: self.samples,
        };
        f(&mut b);
        self.report(&id.to_string(), &b.samples);
        self
    }

    /// Time `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (reports are emitted per-benchmark; nothing to flush).
    pub fn finish(self) {}

    fn report(&self, id: &str, samples: &[Duration]) {
        if samples.is_empty() {
            eprintln!("  {}/{id}: no samples", self.name);
            return;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if median > Duration::ZERO => {
                format!(" ({:.0} elem/s)", n as f64 / median.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
                format!(" ({:.0} B/s)", n as f64 / median.as_secs_f64())
            }
            _ => String::new(),
        };
        eprintln!(
            "  {}/{id}: median {median:?} over {} samples{rate}",
            self.name,
            sorted.len()
        );
    }
}

/// Per-benchmark timing harness handed to the closure.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Run `routine` repeatedly, recording one duration per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.target_samples {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
