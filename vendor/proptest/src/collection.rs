//! Collection strategies: `collection::vec`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Anything usable as the size parameter of [`vec`].
pub trait SizeRange {
    /// Draw a concrete length.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S, L> {
    element: S,
    len: L,
}

impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for vectors whose elements come from `element` and whose length
/// is drawn from `len`.
#[must_use]
pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
    VecStrategy { element, len }
}
