//! Value-generation strategies: ranges, tuples, `Just`, `prop_map`,
//! boxing, and uniform unions (backing `prop_oneof!`).

use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of [`Strategy::Value`].
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// draws one value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map: f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<T> {
    inner: Box<dyn DynStrategy<T>>,
}

impl<T> Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoxedStrategy").finish_non_exhaustive()
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate_dyn(rng)
    }
}

/// Uniform choice among boxed strategies; the expansion of [`prop_oneof!`](crate::prop_oneof).
#[derive(Debug)]
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    /// Build a union over `options`; must be non-empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
