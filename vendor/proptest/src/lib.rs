//! Offline shim of the `proptest` crate: the subset of the API used by the
//! HERMES workspace, implemented as straightforward seeded random testing.
//!
//! The container this workspace builds in has no crates.io access, so the
//! real `proptest` cannot be fetched. This shim keeps the test sources
//! compatible: the [`proptest!`] macro, `prop_assert*`, [`prop_oneof!`],
//! `Strategy`/`Just`/`any`, `collection::vec`, and `ProptestConfig`.
//!
//! Differences from real proptest: cases are drawn from a deterministic
//! per-test seed (derived from the test name) and failures are **not
//! shrunk** — the failing inputs are reported as generated.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Re-exports mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Alias of the crate root, mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::{arbitrary, collection, strategy};
    }

    /// Configuration for a `proptest!` block (re-exported at prelude level
    /// like the real crate).
    pub use crate::test_runner::ProptestConfig;
}

/// Assert a condition inside a `proptest!` body, failing the case (not
/// panicking) so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert!` for equality, printing both operands on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// `prop_assert!` for inequality, printing both operands on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a), stringify!($b), a
        );
    }};
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}

/// The test-definition macro: each `fn name(args in strategies) { body }`
/// becomes a `#[test]` that runs `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> = {
                    $crate::__proptest_bindings!(rng; $($params)*);
                    #[allow(unused_mut)]
                    let mut body = move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        { $body }
                        ::std::result::Result::Ok(())
                    };
                    body()
                };
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("proptest `{}` failed at case {}/{}: {}", stringify!($name), case + 1, config.cases, e);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bindings {
    ($rng:ident;) => {};
    ($rng:ident; mut $name:ident in $s:expr) => {
        let mut $name = $crate::strategy::Strategy::generate(&($s), &mut $rng);
    };
    ($rng:ident; mut $name:ident in $s:expr, $($rest:tt)*) => {
        let mut $name = $crate::strategy::Strategy::generate(&($s), &mut $rng);
        $crate::__proptest_bindings!($rng; $($rest)*);
    };
    ($rng:ident; $name:ident in $s:expr) => {
        let $name = $crate::strategy::Strategy::generate(&($s), &mut $rng);
    };
    ($rng:ident; $name:ident in $s:expr, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::generate(&($s), &mut $rng);
        $crate::__proptest_bindings!($rng; $($rest)*);
    };
}
