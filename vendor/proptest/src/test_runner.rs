//! Runner support types: configuration, case errors, and the test RNG.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use std::fmt;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; the shim keeps un-configured
        // blocks cheaper since there is no shrinking to localize failures.
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// An assertion failed with the given message.
    Fail(String),
    /// The input was rejected (e.g. by a filter); counted, not failed.
    Reject(String),
}

impl TestCaseError {
    /// An assertion failure.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// An input rejection.
    #[must_use]
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// The random source strategies draw from.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// Deterministic RNG derived from a test name (FNV-1a over the bytes),
    /// so every run of a given test sees the same case sequence.
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            inner: SmallRng::seed_from_u64(h),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

impl rand::RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
