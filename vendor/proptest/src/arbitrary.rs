//! `any::<T>()` and the `Arbitrary` trait for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt::Debug;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Debug + Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Uniform in [0, 1): finite by construction, which is what the
        // workspace tests rely on (no NaN surprises in oracles).
        rng.gen::<f64>()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<f32>()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing arbitrary values of `T` over its full domain.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}
