//! Offline shim of the `rand` crate: the subset of the 0.8 API used by the
//! HERMES workspace, implemented with a SplitMix64 generator.
//!
//! The container this workspace builds in has no access to crates.io, so
//! the real `rand` cannot be fetched. This shim keeps the public call sites
//! (`SmallRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range`, `Rng::gen_bool`)
//! source-compatible. Streams are deterministic per seed, which is all the
//! simulator, runtime, and workload generators rely on.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface; only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their full domain (the shim's analogue of
/// `Distribution<T> for Standard`).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draw a value uniformly from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Convenience methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` uniformly over its domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small fast PRNG (SplitMix64). Not cryptographically secure.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
            let unit = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&unit));
        }
    }
}
