//! Offline shim of `parking_lot`: the `Mutex`/`Condvar`/`RwLock` subset the
//! HERMES workspace uses, backed by `std::sync` with poison errors unwrapped
//! (parking_lot's locks do not poison).

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// A mutual-exclusion lock that does not poison.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard for [`Mutex`]. Holds the lock until dropped.
///
/// The inner `Option` exists so [`Condvar::wait`]/[`Condvar::wait_for`] can
/// temporarily take ownership of the std guard through `&mut` (parking_lot's
/// condvar API waits on `&mut MutexGuard`; std's consumes the guard).
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with [`Mutex`]/[`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present before wait");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present before wait");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A reader-writer lock that does not poison.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock guarding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A lightweight spin-then-yield one-time flag (subset of `parking_lot::Once`).
#[derive(Debug, Default)]
pub struct Once {
    done: AtomicBool,
    lock: Mutex<()>,
}

impl Once {
    /// Create a new `Once`.
    pub fn new() -> Self {
        Once {
            done: AtomicBool::new(false),
            lock: Mutex::new(()),
        }
    }

    /// Run `f` exactly once across all callers.
    pub fn call_once<F: FnOnce()>(&self, f: F) {
        if self.done.load(Ordering::Acquire) {
            return;
        }
        let _g = self.lock.lock();
        if !self.done.load(Ordering::Relaxed) {
            f();
            self.done.store(true, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut started = m.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }
}
