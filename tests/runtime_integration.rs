//! Cross-crate integration of the real-thread runtime: the workload
//! algorithms running on tempo-controlled pools, with correctness
//! verified against oracles under every policy.

use hermes::core::{Frequency, Policy, TempoConfig};
use hermes::rt::{DequeKind, Pool};
use hermes::workloads::{
    convex_hull_oracle, knn_classify, knn_classify_oracle, labeled_points, quickhull, radix_sort,
    ray_cast_set, raycast, raycast_oracle, sample_sort, skewed_keys, triangle_soup, uniform_keys,
    uniform_points2,
};

fn tempo_pool(policy: Policy, workers: usize, deque: DequeKind) -> Pool {
    let tempo = TempoConfig::builder()
        .policy(policy)
        .frequencies(vec![Frequency::from_mhz(2400), Frequency::from_mhz(1600)])
        .workers(workers)
        .build();
    Pool::builder()
        .workers(workers)
        .tempo(tempo)
        .deque(deque)
        .emulated_dvfs(Frequency::from_mhz(2400), 8.0)
        .build()
}

#[test]
fn sorts_are_correct_under_every_policy() {
    for policy in Policy::all() {
        let pool = tempo_pool(policy, 4, DequeKind::The);
        let mut a = uniform_keys(120_000, 5);
        let mut b = skewed_keys(120_000, 6);
        let mut ea = a.clone();
        let mut eb = b.clone();
        ea.sort_unstable();
        eb.sort_unstable();
        pool.install(|| radix_sort(&mut a));
        pool.install(|| sample_sort(&mut b));
        assert_eq!(a, ea, "{policy}: radix");
        assert_eq!(b, eb, "{policy}: sample");
        pool.shutdown();
    }
}

#[test]
fn geometry_benchmarks_match_oracles_with_tempo_control() {
    let pool = tempo_pool(Policy::Unified, 4, DequeKind::The);

    let mut train = labeled_points(3_000, 4, 7);
    let queries = uniform_points2(300, 8);
    let expect = knn_classify_oracle(&train, &queries, 5);
    let got = pool.install(|| knn_classify(&mut train, &queries, 5));
    assert_eq!(got, expect, "knn");

    let tris = triangle_soup(1_500, 0.2, 9);
    let rays = ray_cast_set(200, 10);
    let expect = raycast_oracle(&tris, &rays);
    let got = pool.install(|| raycast(&tris, &rays));
    assert_eq!(got, expect, "ray");

    let pts = uniform_points2(4_000, 11);
    let mut expect: Vec<_> = convex_hull_oracle(&pts)
        .iter()
        .map(|p| (p.x.to_bits(), p.y.to_bits()))
        .collect();
    let mut got: Vec<_> = pool
        .install(|| quickhull(&pts))
        .iter()
        .map(|p| (p.x.to_bits(), p.y.to_bits()))
        .collect();
    expect.sort_unstable();
    got.sort_unstable();
    assert_eq!(got, expect, "hull");
}

#[test]
fn lock_free_deque_pool_is_equivalent() {
    let pool = tempo_pool(Policy::Unified, 4, DequeKind::LockFree);
    let mut keys = uniform_keys(150_000, 12);
    let mut expect = keys.clone();
    expect.sort_unstable();
    pool.install(|| radix_sort(&mut keys));
    assert_eq!(keys, expect);
    assert!(pool.stats().pushes > 0);
}

#[test]
fn tempo_hooks_fire_under_real_load() {
    let pool = tempo_pool(Policy::Unified, 4, DequeKind::The);
    let mut keys = uniform_keys(400_000, 13);
    pool.install(|| radix_sort(&mut keys));
    let stats = pool.tempo_stats();
    assert!(stats.steals > 0, "steals observed: {stats}");
    assert!(stats.path_downs > 0, "thief procrastination fired: {stats}");
    assert!(
        pool.total_energy().expect("emulated driver present") > 0.0,
        "energy accounted"
    );
}

#[test]
fn emulated_dvfs_accounts_energy_under_tempo_control() {
    // Under the unified policy with emulated DVFS, workers spend time at
    // the slow frequency (dilated) and the accountant integrates energy.
    let pool = tempo_pool(Policy::Unified, 4, DequeKind::The);
    let mut keys = uniform_keys(300_000, 14);
    pool.install(|| radix_sort(&mut keys));
    let energy = pool.total_energy().expect("emulated driver present");
    assert!(energy > 0.0, "energy accounted: {energy}");
    let by_worker = pool.energy_by_worker().expect("emulated driver present");
    assert_eq!(by_worker.len(), 4);
    assert!(by_worker.iter().all(|&j| j >= 0.0));
    assert!((by_worker.iter().sum::<f64>() - energy).abs() < 1e-9);
}

#[test]
fn many_pools_lifecycle_cleanly() {
    for i in 0..8 {
        let pool = Pool::new(2 + (i % 3));
        let mut v: Vec<u32> = (0..20_000).rev().collect();
        pool.install(|| radix_sort(&mut v));
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
        pool.shutdown();
    }
}

/// A frequency driver that always fails: tempo control must stay
/// best-effort — scheduling correctness is never coupled to actuation.
#[derive(Debug)]
struct FailingDriver;

impl hermes::rt::FrequencyDriver for FailingDriver {
    fn set_frequency(
        &self,
        _worker: usize,
        _freq: hermes::core::Frequency,
    ) -> Result<(), hermes::rt::DriverError> {
        Err(hermes::rt::DriverError::new("actuation unavailable"))
    }

    fn frequency(&self, _worker: usize) -> Option<hermes::core::Frequency> {
        None
    }

    fn name(&self) -> &'static str {
        "failing"
    }
}

#[test]
fn actuator_failure_never_breaks_scheduling() {
    use std::sync::Arc;
    let tempo = TempoConfig::builder()
        .policy(Policy::Unified)
        .frequencies(vec![Frequency::from_mhz(2400), Frequency::from_mhz(1600)])
        .workers(4)
        .build();
    let pool = Pool::builder()
        .workers(4)
        .tempo(tempo)
        .driver(Arc::new(FailingDriver))
        .build();
    let mut keys = uniform_keys(200_000, 77);
    let mut expect = keys.clone();
    expect.sort_unstable();
    pool.install(|| radix_sort(&mut keys));
    assert_eq!(keys, expect);
    // The controller still made decisions; the driver just dropped them.
    assert!(pool.tempo_stats().actuations > 0);
}

#[test]
fn empty_deque_storm_terminates() {
    // Many workers, almost no work: constant failed steals must neither
    // spin a worker into a livelock nor lose the single task.
    let pool = Pool::new(6);
    for round in 0..50 {
        let got = pool.install(move || round * 2);
        assert_eq!(got, round * 2);
    }
}

#[test]
fn steal_contention_storm_conserves_results() {
    // One deep spine with tiny tasks: thieves hammer a single victim.
    let pool = Pool::new(6);
    let total = pool.install(|| {
        hermes::rt::parallel_map_reduce(100_000, 4, 0u64, &|i| i as u64, &|a, b| a + b)
    });
    assert_eq!(total, 100_000u64 * 99_999 / 2);
    assert!(pool.stats().steals > 0);
}
