//! End-to-end integration: the headline claims of the paper must hold in
//! the simulator, at smoke scale, across crates.

use hermes::core::{Frequency, Policy, TempoConfig};
use hermes::sim::{MachineSpec, SimConfig, SimReport};
use hermes::workloads::Benchmark;

/// Run one benchmark on System A at reduced scale.
fn run_a(bench: Benchmark, policy: Policy, workers: usize, seed: u64) -> SimReport {
    let tempo = TempoConfig::builder()
        .policy(policy)
        .frequencies(vec![Frequency::from_mhz(2400), Frequency::from_mhz(1600)])
        .workers(workers)
        .threshold_scale(0.55)
        .build();
    let cfg = SimConfig::new(MachineSpec::system_a(), tempo).with_seed(seed);
    hermes::sim::run(&bench.dag_scaled(seed, 0.4), &cfg).expect("valid config")
}

fn averaged(bench: Benchmark, policy: Policy, workers: usize) -> (f64, f64) {
    let trials = 3;
    let (mut t, mut e) = (0.0, 0.0);
    for seed in 0..trials {
        let r = run_a(bench, policy, workers, seed);
        t += r.elapsed.seconds();
        e += r.energy_j;
    }
    (t / trials as f64, e / trials as f64)
}

#[test]
fn unified_saves_energy_on_every_benchmark() {
    for bench in Benchmark::all() {
        let (bt, be) = averaged(bench, Policy::Baseline, 8);
        let (ht, he) = averaged(bench, Policy::Unified, 8);
        let saving = (1.0 - he / be) * 100.0;
        let loss = (ht / bt - 1.0) * 100.0;
        assert!(
            saving > 2.0,
            "{bench}: unified must save energy, got {saving:.1}%"
        );
        assert!(
            loss < 12.0,
            "{bench}: time loss must stay moderate, got {loss:.1}%"
        );
    }
}

#[test]
fn edp_improves_without_exception() {
    // The paper: "EDP is improved without exception."
    for bench in Benchmark::all() {
        for workers in [4, 16] {
            let (bt, be) = averaged(bench, Policy::Baseline, workers);
            let (ht, he) = averaged(bench, Policy::Unified, workers);
            let edp_ratio = (he * ht) / (be * bt);
            assert!(
                edp_ratio < 1.0,
                "{bench}/{workers}w: normalized EDP {edp_ratio:.3} must be < 1"
            );
        }
    }
}

#[test]
fn both_strategies_contribute() {
    // Figs. 10/12: each strategy alone produces real savings; the unified
    // algorithm is at least comparable to the better of the two.
    let bench = Benchmark::Compare;
    let (_, be) = averaged(bench, Policy::Baseline, 16);
    let (_, wp) = averaged(bench, Policy::WorkpathOnly, 16);
    let (_, wl) = averaged(bench, Policy::WorkloadOnly, 16);
    let (_, un) = averaged(bench, Policy::Unified, 16);
    let save = |e: f64| (1.0 - e / be) * 100.0;
    assert!(save(wp) > 0.5, "workpath alone saves: {:.1}%", save(wp));
    assert!(save(wl) > 1.0, "workload alone saves: {:.1}%", save(wl));
    assert!(
        save(un) > save(wp).min(save(wl)),
        "unified ({:.1}%) at least the weaker strategy (wp {:.1}%, wl {:.1}%)",
        save(un),
        save(wp),
        save(wl)
    );
}

#[test]
fn lower_slow_frequency_saves_more_but_costs_more_time() {
    // Figs. 14/15 shape: 2.4/1.4 saves no less energy than 2.4/1.9 but
    // costs more time.
    let bench = Benchmark::Sort;
    let mk = |slow_mhz: u64| {
        let tempo = TempoConfig::builder()
            .policy(Policy::Unified)
            .frequencies(vec![
                Frequency::from_mhz(2400),
                Frequency::from_mhz(slow_mhz),
            ])
            .workers(16)
            .threshold_scale(0.55)
            .build();
        let cfg = SimConfig::new(MachineSpec::system_a(), tempo).with_seed(1);
        hermes::sim::run(&bench.dag_scaled(1, 0.4), &cfg).expect("valid config")
    };
    let deep = mk(1400);
    let shallow = mk(1900);
    assert!(
        deep.elapsed >= shallow.elapsed,
        "a deeper slow frequency cannot be faster: {} vs {}",
        deep.elapsed,
        shallow.elapsed
    );
}

#[test]
fn baseline_matches_unmodified_scheduler() {
    // Baseline runs never change frequency and finish at full speed.
    let r = run_a(Benchmark::Hull, Policy::Baseline, 8, 2);
    assert_eq!(r.sched.dvfs_transitions, 0);
    assert_eq!(r.tempo.actuations, 0);
    assert_eq!(r.sched.slow_fraction(), 0.0);
}

#[test]
fn simulation_is_deterministic_across_policies() {
    for policy in Policy::all() {
        let a = run_a(Benchmark::Knn, policy, 8, 9);
        let b = run_a(Benchmark::Knn, policy, 8, 9);
        assert_eq!(a.elapsed, b.elapsed, "{policy}");
        assert!((a.energy_j - b.energy_j).abs() < 1e-12, "{policy}");
    }
}

#[test]
fn work_is_conserved_across_policies_and_workers() {
    let dag = Benchmark::Ray.dag_scaled(4, 0.4);
    let total = dag.total_cycles();
    for policy in Policy::all() {
        for workers in [2, 8, 16] {
            let tempo = TempoConfig::builder()
                .policy(policy)
                .frequencies(vec![Frequency::from_mhz(2400), Frequency::from_mhz(1600)])
                .workers(workers)
                .build();
            let cfg = SimConfig::new(MachineSpec::system_a(), tempo);
            let r = hermes::sim::run(&dag, &cfg).expect("valid config");
            assert_eq!(r.sched.cycles, total, "{policy}/{workers}w");
        }
    }
}
