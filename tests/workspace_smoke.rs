//! Workspace-wiring smoke test: every crate reachable through the facade,
//! exercised together in one small end-to-end run.
//!
//! This is the test that guards the Cargo layer itself: `hermes::rt::Pool`
//! (rt → deque + core) with `EmulatedDvfs` actuation, a `join` tree, and a
//! tempo controller that must record at least one steal-driven tempo
//! change (thief procrastination, paper §3.1).

use hermes::core::{Frequency, Policy, TempoConfig};
use hermes::rt::{join, Pool};

/// Heavy leaf: the parallel region must span many OS scheduler ticks so
/// that thieves get scheduled even on single-core test hosts.
fn leaf(x: u64) -> u64 {
    let mut acc = x;
    for _ in 0..500 {
        acc = std::hint::black_box(acc.wrapping_mul(0x9E37_79B9).rotate_left(5));
    }
    acc
}

fn sum_tree(lo: u64, hi: u64) -> u64 {
    if hi - lo <= 64 {
        (lo..hi).map(leaf).fold(0, u64::wrapping_add)
    } else {
        let mid = lo + (hi - lo) / 2;
        let (a, b) = join(|| sum_tree(lo, mid), || sum_tree(mid, hi));
        a.wrapping_add(b)
    }
}

#[test]
fn pool_with_emulated_dvfs_records_steal_driven_tempo_change() {
    let workers = 4;
    let tempo = TempoConfig::builder()
        .policy(Policy::Unified)
        .frequencies(vec![Frequency::from_mhz(2400), Frequency::from_mhz(1600)])
        .workers(workers)
        .build();
    let pool = Pool::builder()
        .workers(workers)
        .tempo(tempo)
        .emulated_dvfs(Frequency::from_mhz(2400), 8.0)
        .build();

    // Outside any pool, join runs sequentially: same tree, same sum.
    let expect = sum_tree(0, 1 << 14);

    // Steals depend on preemption timing on small hosts; retry a few
    // identical trees until the controller observed one.
    let mut got = 0;
    for _ in 0..20 {
        got = pool.install(|| sum_tree(0, 1 << 14));
        if pool.tempo_stats().steals > 0 {
            break;
        }
    }
    assert_eq!(got, expect, "join tree computes the right sum");

    let stats = pool.tempo_stats();
    assert!(stats.steals > 0, "controller saw a steal: {stats}");
    assert!(
        stats.path_downs > 0,
        "a successful steal must procrastinate the thief (one tempo level down): {stats}"
    );
    assert!(
        stats.actuations > 0,
        "tempo changes must reach the emulated-DVFS driver: {stats}"
    );
    assert!(
        pool.total_energy().unwrap() > 0.0,
        "emulated DVFS integrates virtual energy"
    );
}
