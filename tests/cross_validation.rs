//! Sim/rt cross-validation (ROADMAP item): the real-thread pool with
//! emulated DVFS and the discrete-event simulator drive the *same*
//! `hermes-core` controller, so an equivalent workload must produce
//! structurally equivalent telemetry on both. This test runs an
//! imbalanced parallel-for on each executor, folds both into the shared
//! `RunReport` schema, and checks:
//!
//! 1. **Exact controller invariants** on both sides — under the unified
//!    policy every successful steal procrastinates its thief exactly
//!    once, so `path_downs == steals`; the steal matrix partitions each
//!    thief's count with an empty diagonal.
//! 2. **Tempo-transition mix agreement** — the fractions of
//!    path-down / relay-up / workload-up / workload-down transitions
//!    must agree within `MIX_TOLERANCE` (documented in DESIGN.md). The
//!    tolerance is wide because the executors schedule differently (the
//!    sim runs true parallelism; the rt pool may sit on one oversubscribed
//!    host core), but it is far tighter than the failure modes it guards
//!    against: a hook that stops firing zeroes its fraction, pushing the
//!    others apart by ~0.3+.
//! 3. **Schema identity** — both reports serialize and re-parse under
//!    the same JSON schema.
//!
//! Semantic drift this catches: an executor dropping `on_pop`/`on_push`
//! wiring (workload fractions collapse), double-counting steals
//! (`path_downs != steals`), or diverging report schemas.

use hermes::core::{Frequency, Policy, TempoConfig};
use hermes::rt::{parallel_for, Pool};
use hermes::sim::{DagSpec, MachineSpec, SimConfig};
use hermes::telemetry::{RingSink, RunReport, TelemetrySink};
use std::sync::Arc;

/// Documented tolerance on transition-mix fractions (see DESIGN.md
/// §Telemetry): |fraction_sim − fraction_rt| ≤ 0.35 per kind.
const MIX_TOLERANCE: f64 = 0.35;

fn tempo(workers: usize) -> TempoConfig {
    TempoConfig::builder()
        .policy(Policy::Unified)
        .frequencies(vec![Frequency::from_mhz(2400), Frequency::from_mhz(1600)])
        .workers(workers)
        .build()
}

/// Imbalanced per-element work, heavy enough that a region spans many OS
/// scheduler ticks (steals on single-core hosts come from preemption).
fn spin_work(x: &mut u64) {
    let mut acc = *x;
    for _ in 0..2_000 {
        acc = std::hint::black_box(acc.wrapping_mul(2654435761).rotate_left(7));
    }
    *x = acc;
}

/// Run the rt pool until it has accumulated a meaningful steal sample.
fn rt_report(workers: usize) -> RunReport {
    let sink = Arc::new(RingSink::new(workers));
    let mut pool = Pool::builder()
        .workers(workers)
        .tempo(tempo(workers))
        .emulated_dvfs(Frequency::from_mhz(2400), 8.0)
        .telemetry(Arc::clone(&sink) as Arc<dyn TelemetrySink>)
        .build();
    for _ in 0..60 {
        let mut v: Vec<u64> = (0..20_000).collect();
        pool.install(|| parallel_for(&mut v, 64, spin_work));
        if pool.stats().steals >= 30 {
            break;
        }
    }
    // Join the workers so the sink is frozen before folding the report.
    pool.stop();
    pool.flush_energy_telemetry();
    let elapsed = pool.elapsed_ns() as f64 / 1e9;
    let energy = pool.total_energy().unwrap_or(0.0);
    sink.report("cross-validation", "rt", elapsed, energy)
        .with_steal_distances(&pool.worker_distances())
}

/// The matching workload in the simulator: `parallel_for` on the rt
/// side splits recursively (`parallel_chunks`), so the matching DAG is
/// the divide-and-conquer shape — depth 8 gives 256 leaves against the
/// rt side's ~313 chunks, with comparable per-leaf imbalance.
fn sim_report(workers: usize) -> RunReport {
    let sink = Arc::new(RingSink::new(workers));
    let dag = DagSpec::divide_and_conquer(8, 10_000, |i| 200_000 + (i as u64 % 9) * 50_000);
    let cfg = SimConfig::new(MachineSpec::system_a(), tempo(workers))
        .with_telemetry(Arc::clone(&sink) as Arc<dyn TelemetrySink>);
    let r = hermes::sim::run(&dag, &cfg).expect("valid sim config");
    sink.report("cross-validation", "sim", r.elapsed.seconds(), r.energy_j)
        .with_steal_distances(&cfg.worker_distances().expect("valid placement"))
}

/// The invariants either executor must uphold on its own.
fn check_internal_consistency(report: &RunReport, who: &str) {
    let totals = report.totals();
    assert!(totals.steals > 0, "{who}: workload must steal: {totals:?}");
    let mix = report.transition_mix();
    assert_eq!(
        mix.path_downs, totals.steals,
        "{who}: unified policy procrastinates exactly once per steal"
    );
    assert!(
        mix.workload_ups > 0 && mix.workload_downs > 0,
        "{who}: deque growth and drain must cross thresholds: {mix:?}"
    );
    for (w, row) in report.steal_matrix.iter().enumerate() {
        assert_eq!(row[w], 0, "{who}: no self-steals");
        assert_eq!(
            row.iter().sum::<u64>(),
            report.per_worker[w].steals,
            "{who}: matrix row partitions worker {w}'s steals"
        );
    }
    // Both hosts attach their topology: the steal-distance histogram is
    // a re-bucketing of the matrix, so it must total the same steals.
    assert_eq!(
        report.steal_distance_total(),
        totals.steals,
        "{who}: distance histogram partitions the steal matrix"
    );
    // Reports survive their own codec.
    let parsed = RunReport::from_json(&report.to_json()).expect("round trip");
    assert_eq!(&parsed, report);
}

#[test]
fn sim_and_rt_reports_agree_within_tolerance() {
    let workers = 4;
    let sim = sim_report(workers);
    let rt = rt_report(workers);

    assert_eq!(sim.executor, "sim");
    assert_eq!(rt.executor, "rt");
    assert_eq!(sim.workers, rt.workers);
    check_internal_consistency(&sim, "sim");
    check_internal_consistency(&rt, "rt");

    let sim_mix = sim.transition_mix();
    let rt_mix = rt.transition_mix();
    let distance = sim_mix.max_fraction_distance(&rt_mix);
    eprintln!(
        "cross-validation: sim mix {:?} vs rt mix {:?} -> max |Δfraction| = {distance:.3} (tolerance {MIX_TOLERANCE})",
        sim_mix.fractions(),
        rt_mix.fractions(),
    );
    assert!(
        distance <= MIX_TOLERANCE,
        "tempo-transition mixes diverge: sim {:?} {:?} vs rt {:?} {:?} (max |Δfraction| = {distance:.3} > {MIX_TOLERANCE})",
        sim_mix,
        sim_mix.fractions(),
        rt_mix,
        rt_mix.fractions(),
    );

    // Both executors attribute energy: nonzero totals and per-worker
    // samples that sum close to the total the executor reported
    // (rt: exact emulated energy; sim: total minus package-static).
    assert!(sim.energy_j > 0.0 && rt.energy_j > 0.0);
    let rt_worker_sum: f64 = rt.per_worker.iter().map(|w| w.energy_j).sum();
    assert!(
        (rt_worker_sum - rt.energy_j).abs() <= rt.energy_j * 0.01 + 1e-6,
        "rt worker energies {rt_worker_sum} vs total {}",
        rt.energy_j
    );
}
