//! Workspace-level property tests: cross-crate invariants under
//! arbitrary inputs.

use hermes::core::{Frequency, Policy, TempoConfig};
use hermes::rt::{join, parallel_for, Pool};
use hermes::sim::{Action, DagBuilder, MachineSpec, NodeId, SimConfig};
use hermes::workloads::{convex_hull_oracle, quickhull, radix_sort, sample_sort, Point2};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Both parallel sorts agree with the standard sort on arbitrary
    /// key vectors, run inside a tempo-controlled pool.
    #[test]
    fn parallel_sorts_match_std(mut keys in proptest::collection::vec(any::<u32>(), 0..30_000)) {
        let tempo = TempoConfig::builder()
            .policy(Policy::Unified)
            .frequencies(vec![Frequency::from_mhz(2400), Frequency::from_mhz(1600)])
            .workers(3)
            .build();
        let pool = Pool::builder().workers(3).tempo(tempo).build();
        let mut expect = keys.clone();
        expect.sort_unstable();
        let mut keys2 = keys.clone();
        pool.install(|| radix_sort(&mut keys));
        prop_assert_eq!(&keys, &expect);
        pool.install(|| sample_sort(&mut keys2));
        prop_assert_eq!(&keys2, &expect);
    }

    /// Quickhull equals the monotone-chain oracle on arbitrary point
    /// clouds (finite coordinates).
    #[test]
    fn hull_matches_oracle(raw in proptest::collection::vec((0u32..1000, 0u32..1000), 0..2000)) {
        let pts: Vec<Point2> = raw
            .iter()
            .map(|&(x, y)| Point2 { x: f64::from(x) / 1000.0, y: f64::from(y) / 1000.0 })
            .collect();
        let pool = Pool::new(2);
        let mut got: Vec<(u64, u64)> = pool
            .install(|| quickhull(&pts))
            .iter()
            .map(|p| (p.x.to_bits(), p.y.to_bits()))
            .collect();
        let mut expect: Vec<(u64, u64)> = convex_hull_oracle(&pts)
            .iter()
            .map(|p| (p.x.to_bits(), p.y.to_bits()))
            .collect();
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// join computes the same as sequential execution for arbitrary
    /// reduction trees.
    #[test]
    fn join_reductions_are_exact(values in proptest::collection::vec(any::<i64>(), 1..5000)) {
        fn sum(v: &[i64]) -> i64 {
            if v.len() <= 64 {
                return v.iter().copied().fold(0i64, i64::wrapping_add);
            }
            let (l, r) = v.split_at(v.len() / 2);
            let (a, b) = join(|| sum(l), || sum(r));
            a.wrapping_add(b)
        }
        let expect = values.iter().copied().fold(0i64, i64::wrapping_add);
        let pool = Pool::new(4);
        let got = pool.install(|| sum(&values));
        prop_assert_eq!(got, expect);
    }

    /// parallel_for visits every element exactly once regardless of
    /// grain.
    #[test]
    fn parallel_for_visits_exactly_once(
        n in 1usize..20_000,
        grain in 1usize..4096,
    ) {
        let pool = Pool::new(4);
        let mut v = vec![0u8; n];
        pool.install(|| parallel_for(&mut v, grain, |x| *x += 1));
        prop_assert!(v.iter().all(|&x| x == 1));
    }

    /// The simulator conserves work and respects greedy bounds for
    /// arbitrary random DAGs, under every policy.
    #[test]
    fn sim_conserves_arbitrary_dags(
        leaves in proptest::collection::vec(50_000u64..2_000_000, 1..64),
        policy_idx in 0usize..4,
        workers in 1usize..8,
    ) {
        let mut b = DagBuilder::new();
        let children: Vec<NodeId> = leaves.iter().map(|&c| b.node(vec![Action::Work(c)])).collect();
        let mut actions = vec![Action::Work(10_000)];
        for c in children {
            actions.push(Action::Spawn(c));
        }
        actions.push(Action::Sync);
        let root = b.node(actions);
        let dag = b.build(root);

        let tempo = TempoConfig::builder()
            .policy(Policy::all()[policy_idx])
            .frequencies(vec![Frequency::from_mhz(3600), Frequency::from_mhz(2700)])
            .workers(workers.min(4))
            .build();
        let cfg = SimConfig::new(MachineSpec::system_b(), tempo);
        let r = hermes::sim::run(&dag, &cfg).expect("valid config");
        prop_assert_eq!(r.sched.cycles, dag.total_cycles());
        // Greedy bound with the slowest elected frequency as the limit.
        let slow_hz = 2.7e9;
        let t1 = dag.total_cycles() as f64 / slow_hz;
        prop_assert!(r.elapsed.seconds() <= t1 * 1.5 + 0.01,
            "elapsed {} beyond pessimistic serial bound {}", r.elapsed.seconds(), t1);
        prop_assert!(r.energy_j > 0.0);
    }
}
